// Package conformance is a randomized *semantic* conformance harness for
// the translation contract of Definition 1. Where the property tests in
// internal/workload compare translation outputs as Boolean formulas, this
// package executes them: every generated case builds a synthetic scenario
// (internal/workload), draws a random query and dataset, runs the original
// query and every algorithm variant's translation through internal/engine,
// and checks five executable oracles:
//
//   - subsumption: on every generated dataset, the translated answer set is
//     a superset of the true answer set (Definition 1, condition 2), for
//     every algorithm variant (DNF, TDQM, TDQM with full-DNF safety, TDQM
//     without partitioning, CNF baseline);
//   - filter-exactness: the post-filter answer σ_F(σ_S(Q)(D)) is
//     byte-identical to σ_Q(D) and byte-identical across all variants
//     (Eq. 3 executed, not just proved);
//   - minimality probing: per satisfiable DNF disjunct, every atom the SCM
//     translation emits must do real work — loosening it to TRUE must admit
//     an adversarially constructed false-positive tuple (no redundant
//     atoms, the property submatching suppression guarantees), and
//     tightening an inexact atom (starts/contains → equality) must drop a
//     witness tuple that satisfies the original query (the emission is as
//     tight as expressible, Definition 1 condition 3);
//   - compose equivalence: a second mapping hop is layered over the
//     scenario's target vocabulary, the chain is precomposed offline
//     (rules.Compose), and the composed one-hop translation is executed
//     against the sequential two-hop reference — raw answers must nest
//     σ_Q ⊆ σ_seq ⊆ σ_comp, and mediator-level filtered answers (composed
//     source vs ChainDebug sequential replay) must be byte-identical to
//     σ_Q(D);
//   - serve equivalence: a serving stack (internal/serve) over the same
//     scenario — cache on/off × parallel/sequential, and optionally under
//     injected source faults (engine.Injector: transient errors, benign
//     delays, timeout-tripping stalls) — yields answers byte-identical to
//     the sequential mediator baseline, or fails only with typed errors
//     (engine.ErrInjected / context.DeadlineExceeded), and transient
//     failures are retryable to the exact baseline answer.
//
// Every case derives deterministically from one int64 seed, rendered as a
// replayable seed string (see Case.SeedString). Failing cases are shrunk
// greedily — dropping disjuncts/conjuncts, hoisting subtrees, simplifying
// constants, thinning the dataset — to a minimal reproducer that still
// violates the same oracle. cmd/qcheck is the CLI front end; the tests in
// this package run a short deterministic slice under `go test ./...`.
package conformance

import (
	"fmt"
)

// Plant names an intentionally introduced defect, wired through the
// harness's own translation calls so the oracles can be shown to have
// teeth (and the shrinker shown to minimize real failures).
type Plant string

const (
	// PlantNone runs the real algorithms.
	PlantNone Plant = ""
	// PlantNoSuppression replaces Algorithm SCM with the ablation that
	// skips submatching suppression (core.SCMNoSuppression): translations
	// carry redundant weaker atoms, which the minimality oracle catches.
	PlantNoSuppression Plant = "nosuppression"
	// PlantDropFilter discards the filter query F (uses TRUE instead):
	// inexact translations leak false positives, which the filter-exactness
	// oracle catches.
	PlantDropFilter Plant = "dropfilter"
	// PlantBadCompose replaces offline spec composition with the unsound
	// variant that tightens prefix emissions to equality
	// (rules.ComposeTightened): the composed translation drops answers the
	// sequential two-hop reference keeps, which the compose oracle catches.
	PlantBadCompose Plant = "badcompose"
	// PlantBadBreaker answers a source's selections on the breaker-enabled
	// materialized grid points with a silently empty relation after its
	// first execution, modeling a breaker that omits a tripped source
	// instead of surfacing the typed ErrBreakerOpen fast-fail — the
	// degraded-answer-contract violation the serve-equivalence oracle
	// catches as an answer diverging from the sequential baseline.
	PlantBadBreaker Plant = "badbreaker"
	// PlantBadIndex answers the indexed materialized grid points from a
	// stale access snapshot (built before each source's last tuple
	// arrived), so indexed answers silently drop tuples the scan path
	// keeps — which the serve-equivalence oracle catches.
	PlantBadIndex Plant = "badindex"
)

// Options configures a Harness.
type Options struct {
	// Faults enables the fault-injected serve equivalence oracle.
	Faults bool
	// Plant introduces a named defect (for self-tests; see Plant).
	Plant Plant
	// MaxDisjuncts bounds the DNF disjuncts probed per case by the
	// minimality oracle (8 if <= 0).
	MaxDisjuncts int
	// ServeTries bounds the retry loop of the fault-injected serve oracle
	// (60 if <= 0).
	ServeTries int
	// Oracle, when non-empty, restricts Check to the named oracle
	// ("subsumption", "filter-exactness", "minimality", "compose",
	// "serve-equivalence"). Empty runs all of them in the fixed order.
	Oracle string
}

// Harness checks cases against the oracles.
type Harness struct {
	opts Options
}

// New returns a harness with the given options.
func New(opts Options) *Harness {
	if opts.MaxDisjuncts <= 0 {
		opts.MaxDisjuncts = 8
	}
	if opts.ServeTries <= 0 {
		opts.ServeTries = 60
	}
	return &Harness{opts: opts}
}

// Violation reports one oracle failure.
type Violation struct {
	// Oracle names the failed oracle: "subsumption", "filter-exactness",
	// "minimality", "serve-equivalence", or "harness" for infrastructure
	// failures (translation or evaluation errors).
	Oracle string
	// Variant names the algorithm variant involved, when applicable.
	Variant string
	// Detail is a human-readable account of the failure.
	Detail string
}

func (v *Violation) String() string {
	if v.Variant != "" {
		return fmt.Sprintf("[%s/%s] %s", v.Oracle, v.Variant, v.Detail)
	}
	return fmt.Sprintf("[%s] %s", v.Oracle, v.Detail)
}

// Check runs every oracle against the case and returns the first violation,
// or nil if the case conforms. The order is fixed — subsumption,
// filter-exactness, minimality, compose, serve equivalence — so shrinking
// can match reductions against a stable oracle name. Options.Oracle narrows
// the run to one oracle.
func (h *Harness) Check(c *Case) *Violation {
	only := h.opts.Oracle
	run := func(name string) bool { return only == "" || only == name }
	if run("subsumption") {
		if v := h.checkSubsumption(c); v != nil {
			return v
		}
	}
	if run("filter-exactness") {
		if v := h.checkFilterExactness(c); v != nil {
			return v
		}
	}
	if run("minimality") {
		if v := h.checkMinimality(c); v != nil {
			return v
		}
	}
	if run("compose") {
		if v := h.checkCompose(c); v != nil {
			return v
		}
	}
	if run("serve-equivalence") {
		return h.checkServe(c)
	}
	return nil
}

// Failure pairs a failing case with its violation and, when shrinking ran,
// the minimal reproducer.
type Failure struct {
	Case      *Case
	Violation *Violation
	// Shrunk is the minimized case (nil when shrinking was disabled) and
	// ShrunkViolation the violation it still triggers.
	Shrunk          *Case
	ShrunkViolation *Violation
}

// Reproducer renders the failure for humans: the replay seed, the violated
// oracle, and the (shrunk, if available) query and dataset.
func (f *Failure) Reproducer() string {
	c, v := f.Case, f.Violation
	shrunk := ""
	if f.Shrunk != nil {
		c, v = f.Shrunk, f.ShrunkViolation
		shrunk = " (shrunk)"
	}
	return fmt.Sprintf("replay seed: %s\noracle:      %s\nquery%s: %s\nconstraints: %d\ndataset:     %d tuples\ndetail:      %s",
		f.Case.SeedString(), v.Oracle, shrunk, c.Query, len(c.Query.Constraints()), len(c.Data), v.Detail)
}

// Report summarizes a Run.
type Report struct {
	Cases    int
	Failures []*Failure
}

// Run checks n cases with consecutive seeds starting at startSeed,
// shrinking each failure when shrink is set, and returns the report.
// MaxFailures of 1 is applied: Run stops at the first failure, which is the
// mode both the CLI and the tests use (subsequent seeds remain reachable by
// resuming from seed+index).
func (h *Harness) Run(startSeed int64, n int, shrink bool) *Report {
	rep := &Report{}
	for i := 0; i < n; i++ {
		c := NewCase(startSeed + int64(i))
		rep.Cases++
		v := h.Check(c)
		if v == nil {
			continue
		}
		f := &Failure{Case: c, Violation: v}
		if shrink {
			f.Shrunk, f.ShrunkViolation = h.Shrink(c, v)
		}
		rep.Failures = append(rep.Failures, f)
		break
	}
	return rep
}
