package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/rules"
	"repro/internal/sources"
	"repro/internal/workload"
)

// dedupRelation returns the relation with duplicate tuples (by canonical
// string) removed, preserving first-seen order.
func dedupRelation(r *engine.Relation) *engine.Relation {
	out := engine.NewRelation(r.Name)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		key := t.String()
		if !seen[key] {
			seen[key] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// chainSalt decorrelates the chain layer's randomness from the case's own
// stream while keeping the chain a pure function of the seed, so qc1:
// replay and shrinking reproduce the identical chain.
const chainSalt = 0x5eedc0de

// chainFor derives the case's second mapping hop: a chain scenario layered
// over the case scenario's target vocabulary. Deterministic in c.Seed, and
// independent of query/data, so every shrinking candidate shares it.
func chainFor(c *Case) *workload.ChainScenario {
	return workload.NewChain(c.S, rand.New(rand.NewSource(c.Seed^chainSalt)))
}

// composeFor runs the offline composition under test; PlantBadCompose
// reroutes it through the unsound tightening variant.
func (h *Harness) composeFor(a, b *rules.Spec) (*rules.Spec, error) {
	if h.opts.Plant == PlantBadCompose {
		return rules.ComposeTightened(a, b)
	}
	return rules.Compose(a, b)
}

// checkCompose is the spec-algebra oracle: the chain mediator→source→chain
// target translated hop by hop (the reference semantics) and through the
// offline-composed spec must agree after filtering, and the raw answer sets
// must nest per the superset contract:
//
//	σ_Q(D) ⊆ σ_seq(D) ⊆ σ_comp(D)   and   σ_Q(σ_comp(D)) = σ_Q(D)
//
// (composition only widens by covering per-rule what cross-emission
// matchings covered jointly; the filter removes exactly that slack). On top
// of the raw translations, the mediator-level differential runs: ExecuteUnion
// over a composed-spec source must be byte-identical to the same mediator in
// ChainDebug mode, which re-translates sequentially through the hops.
func (h *Harness) checkCompose(c *Case) *Violation {
	ch := chainFor(c)
	a, b := c.S.Spec, ch.Spec2
	comp, err := h.composeFor(a, b)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("compose: %v", err)}
	}

	// Sequential two-hop reference vs composed one-hop translation.
	seq1, err := core.NewTranslator(a).Translate(c.Query, core.AlgTDQM)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("hop 1: %v", err)}
	}
	seqQ, err := core.NewTranslator(b).Translate(seq1, core.AlgTDQM)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("hop 2: %v", err)}
	}
	compQ, err := core.NewTranslator(comp).Translate(c.Query, core.AlgTDQM)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("composed hop: %v", err)}
	}

	// Extend the dataset with the chain-target attributes and execute.
	rel := engine.NewRelation("d")
	for _, t := range c.Data {
		rel.Tuples = append(rel.Tuples, ch.Extend(t))
	}
	for _, t := range rel.Tuples {
		inQ, err := c.S.Eval.EvalQuery(c.Query, t)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("eval Q: %v", err)}
		}
		inSeq, err := c.S.Eval.EvalQuery(seqQ, t)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("eval seq: %v", err)}
		}
		inComp, err := c.S.Eval.EvalQuery(compQ, t)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("eval comp: %v", err)}
		}
		if inQ && !inSeq {
			return &Violation{Oracle: "compose",
				Detail: fmt.Sprintf("sequential two-hop translation lost a true answer\nq = %s\nseq = %s\ntuple = %s", c.Query, seqQ, t)}
		}
		if inSeq && !inComp {
			return &Violation{Oracle: "compose",
				Detail: fmt.Sprintf("composed translation rejects a tuple the sequential hops admit\nq = %s\nseq = %s\ncomp = %s\ntuple = %s",
					c.Query, seqQ, compQ, t)}
		}
		// inComp && !inQ is allowed slack: composition covers per-rule what
		// cross-emission matchings covered jointly, and the mediator-level
		// filtered comparison below must remove exactly that.
	}

	// Mediator-level differential: composed-spec source vs ChainDebug
	// sequential replay, both post-filtered by ExecuteUnion.
	truth, err := rel.Select(c.Query, c.S.Eval)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("eval truth: %v", err)}
	}
	// ExecuteUnion dedups identical tuples; dedup the truth the same way so
	// the byte comparison is over answer *sets*.
	truth = dedupRelation(truth)
	chSpec := &mediator.ChainSpec{Hops: []*rules.Spec{a, b}, Composed: comp}
	data := map[string]*engine.Relation{"chain": rel}

	medC := mediator.New(&sources.Source{Name: "chain", Spec: comp, Eval: c.S.Eval})
	ansC, _, err := medC.ExecuteUnion(c.Query, data)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("composed ExecuteUnion: %v", err)}
	}

	medD := mediator.New()
	medD.AddChainSource("chain", chSpec, c.S.Eval)
	medD.ChainDebug = true
	ansD, _, err := medD.ExecuteUnion(c.Query, data)
	if err != nil {
		return &Violation{Oracle: "harness", Variant: "compose", Detail: fmt.Sprintf("chain-debug ExecuteUnion: %v", err)}
	}

	want := renderRelation(truth)
	if got := renderRelation(ansC); got != want {
		return &Violation{Oracle: "compose",
			Detail: fmt.Sprintf("composed-source filtered answer differs from σ_Q(D)\nq = %s\ncomp = %s\ngot %d tuples, want %d",
				c.Query, compQ, ansC.Len(), truth.Len())}
	}
	if got := renderRelation(ansD); got != want {
		return &Violation{Oracle: "compose",
			Detail: fmt.Sprintf("chain-debug filtered answer differs from σ_Q(D)\nq = %s\nseq = %s\ngot %d tuples, want %d",
				c.Query, seqQ, ansD.Len(), truth.Len())}
	}
	return nil
}
