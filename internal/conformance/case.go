package conformance

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/values"
	"repro/internal/workload"
)

// Case is one conformance check instance: a generated scenario, a random
// query over its base vocabulary, and a synthetic dataset biased to contain
// witnesses (tuples satisfying the query) and near misses (tuples one
// perturbation away). Everything derives deterministically from Seed.
type Case struct {
	Seed int64
	Cfg  workload.Config
	S    *workload.Scenario
	// Query is the original mediator-vocabulary query.
	Query *qtree.Node
	// Data is the synthetic source dataset the oracles execute against.
	Data []engine.Tuple
}

// seedPrefix versions the replay format.
const seedPrefix = "qc1:"

// NewCase generates the case for a seed.
func NewCase(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.Config{
		Indep:        1 + rng.Intn(3),
		Pairs:        1 + rng.Intn(2),
		InexactPairs: rng.Intn(2),
		Triples:      rng.Intn(2),
	}
	s := workload.New(cfg)
	qcfg := workload.QueryConfig{
		MaxDepth:  2 + rng.Intn(3),
		MaxFanout: 2 + rng.Intn(2),
		LeafProb:  0.4,
	}
	c := &Case{Seed: seed, Cfg: cfg, S: s, Query: s.RandomQuery(rng, qcfg)}
	c.Data = c.genData(rng)
	return c
}

// SeedString renders the replay handle for this case's seed. Replaying the
// string regenerates the original (unshrunk) case; checking and shrinking
// are deterministic, so the same reproducer falls out.
func (c *Case) SeedString() string {
	return seedPrefix + strconv.FormatUint(uint64(c.Seed), 36)
}

// ParseSeedString recovers a case seed from a SeedString.
func ParseSeedString(s string) (int64, error) {
	if !strings.HasPrefix(s, seedPrefix) {
		return 0, fmt.Errorf("conformance: seed string %q lacks %q prefix", s, seedPrefix)
	}
	u, err := strconv.ParseUint(strings.TrimPrefix(s, seedPrefix), 36, 64)
	if err != nil {
		return 0, fmt.Errorf("conformance: bad seed string %q: %w", s, err)
	}
	return int64(u), nil
}

// genData builds the dataset: background random tuples, one witness tuple
// per satisfiable DNF disjunct (random fill on unconstrained attributes),
// and near misses perturbing single attributes of those witnesses.
func (c *Case) genData(rng *rand.Rand) []engine.Tuple {
	var out []engine.Tuple
	n := 30 + rng.Intn(50)
	for i := 0; i < n; i++ {
		out = append(out, c.S.RandomTuple(rng))
	}
	for _, d := range satisfiableDisjuncts(c.Query, 10) {
		vals := c.randFill(rng, d.assign)
		out = append(out, c.S.Tuple(vals))
		for j := 0; j < 4; j++ {
			miss := cloneAssign(vals)
			a := c.S.BaseAttrs[rng.Intn(len(c.S.BaseAttrs))]
			miss[a] = fmt.Sprintf("v%d", rng.Intn(c.S.ValueDomain))
			out = append(out, c.S.Tuple(miss))
		}
	}
	return out
}

// randFill completes a partial assignment with random domain values.
func (c *Case) randFill(rng *rand.Rand, assign map[string]string) map[string]string {
	vals := cloneAssign(assign)
	for _, a := range c.S.BaseAttrs {
		if _, ok := vals[a]; !ok {
			vals[a] = fmt.Sprintf("v%d", rng.Intn(c.S.ValueDomain))
		}
	}
	return vals
}

func cloneAssign(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// withQuery derives a shrinking candidate sharing the scenario and data.
func (c *Case) withQuery(q *qtree.Node) *Case {
	return &Case{Seed: c.Seed, Cfg: c.Cfg, S: c.S, Query: q, Data: c.Data}
}

// withData derives a shrinking candidate sharing the scenario and query.
func (c *Case) withData(data []engine.Tuple) *Case {
	return &Case{Seed: c.Seed, Cfg: c.Cfg, S: c.S, Query: c.Query, Data: data}
}

// disjunct is one satisfiable DNF disjunct of a query with its witnessing
// base-attribute assignment.
type disjunct struct {
	set    *qtree.ConstraintSet
	assign map[string]string
}

// satisfiableDisjuncts returns up to max satisfiable disjuncts of q's DNF.
// Workload queries constrain base attributes with equality over string
// constants, so a disjunct is satisfiable iff it never binds one attribute
// to two distinct constants.
func satisfiableDisjuncts(q *qtree.Node, max int) []disjunct {
	var out []disjunct
	for _, cs := range qtree.DNFDisjuncts(q) {
		if assign, ok := assignment(cs); ok {
			out = append(out, disjunct{set: cs, assign: assign})
			if len(out) >= max {
				break
			}
		}
	}
	return out
}

func assignment(cs *qtree.ConstraintSet) (map[string]string, bool) {
	m := make(map[string]string)
	for _, c := range cs.Slice() {
		if c.IsJoin() || c.Op != qtree.OpEq {
			return nil, false
		}
		sv, ok := c.Val.(values.String)
		if !ok {
			return nil, false
		}
		if prev, bound := m[c.Attr.Name]; bound && prev != sv.Raw() {
			return nil, false
		}
		m[c.Attr.Name] = sv.Raw()
	}
	return m, true
}
