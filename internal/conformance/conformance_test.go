package conformance

import (
	"strings"
	"testing"
)

// TestCleanSlice is the deterministic slice `go test ./...` runs: the real
// algorithms must pass every dataset-backed oracle on consecutive seeds.
func TestCleanSlice(t *testing.T) {
	h := New(Options{})
	rep := h.Run(1, 40, false)
	if len(rep.Failures) != 0 {
		t.Fatalf("clean run violated an oracle:\n%s", rep.Failures[0].Reproducer())
	}
	if rep.Cases != 40 {
		t.Fatalf("ran %d cases, want 40", rep.Cases)
	}
}

// TestCleanSliceWithFaults runs a smaller slice through the fault-injected
// serve oracle (real sleeps are involved, so the slice stays short).
func TestCleanSliceWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected slice sleeps; skipped in -short")
	}
	h := New(Options{Faults: true})
	rep := h.Run(100, 6, false)
	if len(rep.Failures) != 0 {
		t.Fatalf("fault-injected run violated an oracle:\n%s", rep.Failures[0].Reproducer())
	}
}

// TestPlantedNoSuppressionCaught plants the submatching-suppression ablation
// as a bug and demands the minimality oracle catches it and the shrinker
// reduces the reproducer to at most 3 constraints.
func TestPlantedNoSuppressionCaught(t *testing.T) {
	h := New(Options{Plant: PlantNoSuppression})
	rep := h.Run(1, 200, true)
	if len(rep.Failures) == 0 {
		t.Fatalf("planted no-suppression bug not caught in %d cases", rep.Cases)
	}
	f := rep.Failures[0]
	if f.Violation.Oracle != "minimality" {
		t.Fatalf("planted no-suppression bug caught by %q, want minimality:\n%s",
			f.Violation.Oracle, f.Reproducer())
	}
	if f.Shrunk == nil {
		t.Fatalf("failure was not shrunk")
	}
	if f.ShrunkViolation.Oracle != "minimality" {
		t.Fatalf("shrinking drifted to oracle %q", f.ShrunkViolation.Oracle)
	}
	if n := len(f.Shrunk.Query.Constraints()); n > 3 {
		t.Fatalf("shrunk reproducer has %d constraints, want <= 3:\n%s", n, f.Reproducer())
	}
}

// TestPlantedDropFilterCaught plants a discarded filter query and demands
// the filter-exactness oracle catches the leaked false positives.
func TestPlantedDropFilterCaught(t *testing.T) {
	h := New(Options{Plant: PlantDropFilter})
	rep := h.Run(1, 200, false)
	if len(rep.Failures) == 0 {
		t.Fatalf("planted dropped-filter bug not caught in %d cases", rep.Cases)
	}
	if o := rep.Failures[0].Violation.Oracle; o != "filter-exactness" {
		t.Fatalf("planted dropped-filter bug caught by %q, want filter-exactness:\n%s",
			o, rep.Failures[0].Reproducer())
	}
}

// TestPlantedBadComposeCaught plants the unsound tightening composition and
// demands the compose oracle catches it and the shrinker reduces the
// reproducer to a small witness.
func TestPlantedBadComposeCaught(t *testing.T) {
	h := New(Options{Plant: PlantBadCompose})
	rep := h.Run(1, 200, true)
	if len(rep.Failures) == 0 {
		t.Fatalf("planted bad-compose bug not caught in %d cases", rep.Cases)
	}
	f := rep.Failures[0]
	if f.Violation.Oracle != "compose" {
		t.Fatalf("planted bad-compose bug caught by %q, want compose:\n%s",
			f.Violation.Oracle, f.Reproducer())
	}
	if f.Shrunk == nil {
		t.Fatalf("failure was not shrunk")
	}
	if f.ShrunkViolation.Oracle != "compose" {
		t.Fatalf("shrinking drifted to oracle %q", f.ShrunkViolation.Oracle)
	}
	if n := len(f.Shrunk.Query.Constraints()); n > 3 {
		t.Fatalf("shrunk reproducer has %d constraints, want <= 3:\n%s", n, f.Reproducer())
	}
	if n := len(f.Shrunk.Data); n > 8 {
		t.Fatalf("shrunk reproducer has %d tuples, want <= 8:\n%s", n, f.Reproducer())
	}
}

// TestPlantedBadIndexCaught plants the stale-index-snapshot executor on the
// indexed materialized grid points and demands the serve-equivalence oracle
// catches the dropped tuples.
func TestPlantedBadIndexCaught(t *testing.T) {
	h := New(Options{Plant: PlantBadIndex})
	rep := h.Run(1, 200, false)
	if len(rep.Failures) == 0 {
		t.Fatalf("planted stale-index bug not caught in %d cases", rep.Cases)
	}
	if o := rep.Failures[0].Violation.Oracle; o != "serve-equivalence" {
		t.Fatalf("planted stale-index bug caught by %q, want serve-equivalence:\n%s",
			o, rep.Failures[0].Reproducer())
	}
}

// TestPlantedBadBreakerCaught plants the silently-omitting breaker executor
// on the breaker-enabled materialized grid points and demands the
// serve-equivalence oracle catches the degraded-answer-contract violation
// (an empty per-source answer instead of the typed ErrBreakerOpen).
func TestPlantedBadBreakerCaught(t *testing.T) {
	h := New(Options{Plant: PlantBadBreaker})
	rep := h.Run(1, 200, false)
	if len(rep.Failures) == 0 {
		t.Fatalf("planted silent-breaker bug not caught in %d cases", rep.Cases)
	}
	if o := rep.Failures[0].Violation.Oracle; o != "serve-equivalence" {
		t.Fatalf("planted silent-breaker bug caught by %q, want serve-equivalence:\n%s",
			o, rep.Failures[0].Reproducer())
	}
}

// TestOracleFilter restricts the harness to a single oracle: the planted
// compose bug must be invisible to a minimality-only run and caught by a
// compose-only run.
func TestOracleFilter(t *testing.T) {
	blind := New(Options{Plant: PlantBadCompose, Oracle: "minimality"})
	if rep := blind.Run(1, 40, false); len(rep.Failures) != 0 {
		t.Fatalf("minimality-only run caught the compose plant:\n%s", rep.Failures[0].Reproducer())
	}
	sharp := New(Options{Plant: PlantBadCompose, Oracle: "compose"})
	rep := sharp.Run(1, 200, false)
	if len(rep.Failures) == 0 {
		t.Fatalf("compose-only run missed the planted bug in %d cases", rep.Cases)
	}
	if o := rep.Failures[0].Violation.Oracle; o != "compose" {
		t.Fatalf("compose-only run failed oracle %q", o)
	}
}

// TestReplayDeterminism regenerates a failing case from its seed string and
// demands the identical violation and identical shrunk reproducer.
func TestReplayDeterminism(t *testing.T) {
	h := New(Options{Plant: PlantNoSuppression})
	rep := h.Run(1, 200, true)
	if len(rep.Failures) == 0 {
		t.Fatalf("no planted failure to replay")
	}
	f := rep.Failures[0]
	seed, err := ParseSeedString(f.Case.SeedString())
	if err != nil {
		t.Fatalf("round-tripping seed string: %v", err)
	}
	if seed != f.Case.Seed {
		t.Fatalf("seed string round trip: got %d, want %d", seed, f.Case.Seed)
	}
	c2 := NewCase(seed)
	if c2.Query.String() != f.Case.Query.String() {
		t.Fatalf("replayed query differs:\n%s\nvs\n%s", c2.Query, f.Case.Query)
	}
	v2 := h.Check(c2)
	if v2 == nil || v2.String() != f.Violation.String() {
		t.Fatalf("replayed violation differs:\n%v\nvs\n%v", v2, f.Violation)
	}
	s2, sv2 := h.Shrink(c2, v2)
	if s2.Query.String() != f.Shrunk.Query.String() || sv2.String() != f.ShrunkViolation.String() {
		t.Fatalf("replayed shrink differs:\n%s / %s\nvs\n%s / %s",
			s2.Query, sv2, f.Shrunk.Query, f.ShrunkViolation)
	}
}

// TestParseSeedStringRejectsGarbage covers the error paths of the replay
// format.
func TestParseSeedStringRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "qc2:12", "qc1:", "qc1:!!!", "12"} {
		if _, err := ParseSeedString(bad); err == nil {
			t.Errorf("ParseSeedString(%q) accepted garbage", bad)
		}
	}
	c := NewCase(12345)
	if !strings.HasPrefix(c.SeedString(), "qc1:") {
		t.Errorf("seed string %q lacks version prefix", c.SeedString())
	}
}
