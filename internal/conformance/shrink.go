package conformance

import (
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/values"
)

// shrinkRounds bounds the greedy descent; each accepted reduction strictly
// shrinks the query or the dataset, so the bound is a safety net, not a
// tuning knob.
const shrinkRounds = 200

// Shrink greedily minimizes a failing case: it tries query reductions
// (dropping a child of an ∧/∨ node, hoisting a subtree over its parent,
// simplifying constants to "v0") and dataset reductions (halving, then
// single-tuple removal), accepting a candidate only if it still violates the
// SAME oracle. Everything is deterministic, so replaying a seed re-derives
// the identical reproducer.
func (h *Harness) Shrink(c *Case, v *Violation) (*Case, *Violation) {
	cur, curV := c, v
	for round := 0; round < shrinkRounds; round++ {
		improved := false
		for _, cand := range h.candidates(cur) {
			cv := h.Check(cand)
			if cv != nil && cv.Oracle == curV.Oracle {
				cur, curV = cand, cv
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curV
}

// candidates enumerates one-step reductions of the case, smallest-impact
// last: structural query shrinks first (they cut the most), then constant
// simplification (folded into the same enumeration), then dataset shrinks.
func (h *Harness) candidates(c *Case) []*Case {
	var out []*Case
	for _, q := range queryMutations(c.Query) {
		out = append(out, c.withQuery(q.Normalize()))
	}
	n := len(c.Data)
	if n > 1 {
		out = append(out, c.withData(c.Data[:n/2]), c.withData(c.Data[n/2:]))
	}
	if n > 1 && n <= 24 {
		for i := 0; i < n; i++ {
			rest := make([]engine.Tuple, 0, n-1)
			rest = append(rest, c.Data[:i]...)
			rest = append(rest, c.Data[i+1:]...)
			out = append(out, c.withData(rest))
		}
	}
	return out
}

// queryMutations returns every tree produced by one reduction step anywhere
// in q: dropping one child of an interior node, replacing an interior node
// by one of its children, or rewriting a leaf constant to the domain's first
// value.
func queryMutations(q *qtree.Node) []*qtree.Node {
	switch q.Kind {
	case qtree.KindLeaf:
		if c := q.C; !c.IsJoin() {
			if s, ok := c.Val.(values.String); ok && s.Raw() != "v0" {
				nc := c.Clone()
				nc.Val = values.String("v0")
				return []*qtree.Node{qtree.Leaf(nc)}
			}
		}
		return nil
	case qtree.KindAnd, qtree.KindOr:
		var out []*qtree.Node
		if len(q.Kids) > 1 {
			for i := range q.Kids {
				kids := make([]*qtree.Node, 0, len(q.Kids)-1)
				kids = append(kids, q.Kids[:i]...)
				kids = append(kids, q.Kids[i+1:]...)
				out = append(out, &qtree.Node{Kind: q.Kind, Kids: kids})
			}
		}
		out = append(out, q.Kids...)
		for i, k := range q.Kids {
			for _, mk := range queryMutations(k) {
				kids := make([]*qtree.Node, len(q.Kids))
				copy(kids, q.Kids)
				kids[i] = mk
				out = append(out, &qtree.Node{Kind: q.Kind, Kids: kids})
			}
		}
		return out
	default:
		return nil
	}
}
