package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rules"
)

// assocSalt seeds the third chain hop used by the associativity property.
const assocSalt = 0xa55c1a7e

// FuzzComposeEquivalence fuzzes the compose oracle over case seeds and, on
// every case, additionally checks associativity of composition on
// translation output: with a three-hop chain a→b→d, both (a∘b)∘d and
// a∘(b∘d) must subsume the truth on the three-hop-extended dataset and be
// byte-identical to it after filtering with Q.
func FuzzComposeEquivalence(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1001, 31337} {
		f.Add(s)
	}
	h := New(Options{Oracle: "compose"})
	f.Fuzz(func(t *testing.T, seed int64) {
		c := NewCase(seed)
		if v := h.Check(c); v != nil {
			t.Fatalf("seed %d (%s): %s", seed, c.SeedString(), v)
		}

		ch2 := chainFor(c)
		ch3 := ch2.Next(rand.New(rand.NewSource(c.Seed ^ assocSalt)))
		a, b, d := c.S.Spec, ch2.Spec2, ch3.Spec2
		ab, err := rules.Compose(a, b)
		if err != nil {
			t.Fatalf("seed %d: a∘b: %v", seed, err)
		}
		left, err := rules.Compose(ab, d)
		if err != nil {
			t.Fatalf("seed %d: (a∘b)∘d: %v", seed, err)
		}
		bd, err := rules.Compose(b, d)
		if err != nil {
			t.Fatalf("seed %d: b∘d: %v", seed, err)
		}
		right, err := rules.Compose(a, bd)
		if err != nil {
			t.Fatalf("seed %d: a∘(b∘d): %v", seed, err)
		}

		rel := engine.NewRelation("d")
		for _, tu := range c.Data {
			rel.Tuples = append(rel.Tuples, ch3.Extend(ch2.Extend(tu)))
		}
		truth, err := rel.Select(c.Query, c.S.Eval)
		if err != nil {
			t.Fatalf("seed %d: truth: %v", seed, err)
		}
		want := renderRelation(truth)
		for _, side := range []struct {
			name string
			spec *rules.Spec
		}{{"(a∘b)∘d", left}, {"a∘(b∘d)", right}} {
			mapped, err := core.NewTranslator(side.spec).Translate(c.Query, core.AlgTDQM)
			if err != nil {
				t.Fatalf("seed %d: translate %s: %v", seed, side.name, err)
			}
			sel, err := rel.Select(mapped, c.S.Eval)
			if err != nil {
				t.Fatalf("seed %d: eval %s: %v", seed, side.name, err)
			}
			for _, tu := range truth.Tuples {
				found := false
				for _, got := range sel.Tuples {
					if got.String() == tu.String() {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: %s lost true answer %s\nq = %s\nS(q) = %s",
						seed, side.name, tu, c.Query, mapped)
				}
			}
			filtered, err := sel.Select(c.Query, c.S.Eval)
			if err != nil {
				t.Fatalf("seed %d: filter %s: %v", seed, side.name, err)
			}
			if got := renderRelation(filtered); got != want {
				t.Fatalf("seed %d: %s filtered answer differs from σ_Q(D)\nq = %s\nS(q) = %s",
					seed, side.name, c.Query, mapped)
			}
		}
	})
}
