package conformance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
	"repro/internal/workload"
)

// variantNames lists the algorithm variants every dataset-backed oracle
// exercises: the DNF baseline, TDQM, TDQM with the full-DNF safety ablation
// (Lemma 3: identical partitions, different cost), TDQM without
// partitioning, and the Garlic-style CNF baseline.
var variantNames = []string{"dnf", "tdqm", "tdqm-fulldnf", "tdqm-nopartition", "cnf"}

// translateVariant maps q with the named variant under a fresh translator.
func translateVariant(spec *rules.Spec, name string, q *qtree.Node) (*qtree.Node, error) {
	tr := core.NewTranslator(spec)
	switch name {
	case "dnf":
		return tr.DNFMap(q)
	case "tdqm":
		return tr.TDQM(q)
	case "tdqm-fulldnf":
		tr.SetFullDNFSafety(true)
		return tr.TDQM(q)
	case "tdqm-nopartition":
		return tr.TDQMNoPartition(q)
	case "cnf":
		return tr.CNFMap(q)
	default:
		return nil, fmt.Errorf("conformance: unknown variant %q", name)
	}
}

// translateWithFilterVariant additionally returns the filter query F of
// Eq. 3. The ablated TDQM variant is not routed through
// core.TranslateWithFilter, so it gets the always-correct conservative
// filter Q itself.
func translateWithFilterVariant(spec *rules.Spec, name string, q *qtree.Node) (mapped, filter *qtree.Node, err error) {
	tr := core.NewTranslator(spec)
	switch name {
	case "dnf":
		return tr.TranslateWithFilter(q, core.AlgDNF)
	case "tdqm":
		return tr.TranslateWithFilter(q, core.AlgTDQM)
	case "cnf":
		return tr.TranslateWithFilter(q, core.AlgCNF)
	case "tdqm-fulldnf":
		tr.SetFullDNFSafety(true)
		return tr.TranslateWithFilter(q, core.AlgTDQM)
	case "tdqm-nopartition":
		mapped, err = tr.TDQMNoPartition(q)
		return mapped, q.Clone(), err
	default:
		return nil, nil, fmt.Errorf("conformance: unknown variant %q", name)
	}
}

// checkSubsumption executes q and every variant's translation over the
// dataset and demands σ_Q(D) ⊆ σ_S(Q)(D), plus target expressibility of
// every translation (Definition 1, conditions 1–2).
func (h *Harness) checkSubsumption(c *Case) *Violation {
	for _, vn := range variantNames {
		mapped, err := translateVariant(c.S.Spec, vn, c.Query)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: vn, Detail: fmt.Sprintf("translate: %v", err)}
		}
		if err := c.S.Spec.Target.Expressible(mapped); err != nil {
			return &Violation{Oracle: "subsumption", Variant: vn,
				Detail: fmt.Sprintf("translation not expressible at target: %v\nS(q) = %s", err, mapped)}
		}
		for _, t := range c.Data {
			inQ, err := c.S.Eval.EvalQuery(c.Query, t)
			if err != nil {
				return &Violation{Oracle: "harness", Variant: vn, Detail: fmt.Sprintf("eval Q: %v", err)}
			}
			if !inQ {
				continue
			}
			inS, err := c.S.Eval.EvalQuery(mapped, t)
			if err != nil {
				return &Violation{Oracle: "harness", Variant: vn, Detail: fmt.Sprintf("eval S(Q): %v", err)}
			}
			if !inS {
				return &Violation{Oracle: "subsumption", Variant: vn,
					Detail: fmt.Sprintf("tuple satisfies Q but not S(Q)\nq = %s\nS(q) = %s\ntuple = %s", c.Query, mapped, t)}
			}
		}
	}
	return nil
}

// checkFilterExactness executes Eq. 3: for every variant, the post-filter
// answer σ_F(σ_S(Q)(D)) must be byte-identical to the true answer σ_Q(D) —
// and therefore byte-identical across variants.
func (h *Harness) checkFilterExactness(c *Case) *Violation {
	rel := engine.NewRelation("d", c.Data...)
	truth, err := rel.Select(c.Query, c.S.Eval)
	if err != nil {
		return &Violation{Oracle: "harness", Detail: fmt.Sprintf("eval Q over dataset: %v", err)}
	}
	want := renderRelation(truth)
	for _, vn := range variantNames {
		mapped, filter, err := translateWithFilterVariant(c.S.Spec, vn, c.Query)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: vn, Detail: fmt.Sprintf("translate with filter: %v", err)}
		}
		if h.opts.Plant == PlantDropFilter {
			filter = qtree.True()
		}
		sel, err := rel.Select(mapped, c.S.Eval)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: vn, Detail: fmt.Sprintf("eval S(Q): %v", err)}
		}
		got, err := sel.Select(filter, c.S.Eval)
		if err != nil {
			return &Violation{Oracle: "harness", Variant: vn, Detail: fmt.Sprintf("eval F: %v", err)}
		}
		if g := renderRelation(got); g != want {
			return &Violation{Oracle: "filter-exactness", Variant: vn,
				Detail: fmt.Sprintf("σ_F(σ_S(D)) differs from σ_Q(D)\nq = %s\nS(q) = %s\nF = %s\ngot %d tuples, want %d",
					c.Query, mapped, filter, got.Len(), truth.Len())}
		}
	}
	return nil
}

// checkMinimality probes Definition 1 condition 3 on the SCM translation of
// each satisfiable DNF disjunct: every emitted atom must be irredundant
// (loosening it to TRUE admits an adversarial false positive the full
// translation rejects) and inexact atoms must be tight (replacing a
// starts/contains relaxation with plain equality drops an adversarial
// witness that satisfies the disjunct). Witness tuples are constructed by
// sweeping the atom's dependency group through the whole value domain while
// the rest of the assignment holds the other atoms satisfied.
func (h *Harness) checkMinimality(c *Case) *Violation {
	for _, d := range satisfiableDisjuncts(c.Query, h.opts.MaxDisjuncts) {
		conj := d.set.Conjunction()
		s, err := h.scmTranslate(c, d.set.Slice())
		if err != nil {
			return &Violation{Oracle: "harness", Detail: fmt.Sprintf("SCM(%s): %v", conj, err)}
		}
		s = s.Normalize()
		if s.IsTrue() {
			continue
		}
		nLeaves := countLeaves(s)
		for i := 0; i < nLeaves; i++ {
			atom := leafAt(s, i)
			if atom == nil || atom.C.IsJoin() {
				continue
			}
			g, ok := c.S.GroupFor(atom.C.Attr.Name)
			if !ok {
				continue
			}
			if v := h.probeIrredundant(c, d, s, i, atom, g, conj); v != nil {
				return v
			}
			if v := h.probeTight(c, d, s, i, atom, g, conj); v != nil {
				return v
			}
		}
	}
	return nil
}

// scmTranslate is the harness's SCM entry point; PlantNoSuppression reroutes
// it through the ablation hook.
func (h *Harness) scmTranslate(c *Case, cs []*qtree.Constraint) (*qtree.Node, error) {
	tr := core.NewTranslator(c.S.Spec)
	if h.opts.Plant == PlantNoSuppression {
		return tr.SCMNoSuppression(cs)
	}
	res, err := tr.SCM(cs)
	if err != nil {
		return nil, err
	}
	return res.Query, nil
}

// probeIrredundant demands a false-positive witness for atom i: a tuple the
// translation with the atom loosened to TRUE accepts but the full
// translation rejects. Absence over the whole domain sweep of the atom's
// group means the atom is implied by the rest — a redundancy minimal
// translations never emit.
func (h *Harness) probeIrredundant(c *Case, d disjunct, s *qtree.Node, i int, atom *qtree.Node, g workload.Group, conj *qtree.Node) *Violation {
	loosened := replaceLeafAt(s, i, qtree.True()).Normalize()
	for _, combo := range valueCombos(c.S.ValueDomain, len(g.Attrs)) {
		vals := cloneAssign(d.assign)
		for k, a := range g.Attrs {
			vals[a] = fmt.Sprintf("v%d", combo[k])
		}
		t := c.S.Tuple(vals)
		inS, err := c.S.Eval.EvalQuery(s, t)
		if err != nil {
			return &Violation{Oracle: "harness", Detail: fmt.Sprintf("eval S: %v", err)}
		}
		inL, err := c.S.Eval.EvalQuery(loosened, t)
		if err != nil {
			return &Violation{Oracle: "harness", Detail: fmt.Sprintf("eval loosened S: %v", err)}
		}
		if inL && !inS {
			return nil // witness found: the atom does real work
		}
	}
	return &Violation{Oracle: "minimality",
		Detail: fmt.Sprintf("atom %s of S(%s) is redundant: loosening it to TRUE admits no tuple over the full domain of group %s\nS = %s",
			atom.C, conj, g.Target, s)}
}

// probeTight checks that a relaxed atom (starts/contains) cannot be
// tightened to plain equality without losing subsumption: some tuple
// satisfying the disjunct must fail the tightened translation. The sweep
// varies only the group attributes the disjunct leaves unconstrained, so
// every candidate tuple still satisfies the original query.
func (h *Harness) probeTight(c *Case, d disjunct, s *qtree.Node, i int, atom *qtree.Node, g workload.Group, conj *qtree.Node) *Violation {
	tv, ok := tightenValue(atom.C)
	if !ok {
		return nil
	}
	tight := replaceLeafAt(s, i, qtree.Leaf(qtree.Sel(atom.C.Attr, qtree.OpEq, tv))).Normalize()
	for _, combo := range valueCombos(c.S.ValueDomain, len(g.Attrs)) {
		vals := cloneAssign(d.assign)
		for k, a := range g.Attrs {
			if _, constrained := d.assign[a]; !constrained {
				vals[a] = fmt.Sprintf("v%d", combo[k])
			}
		}
		t := c.S.Tuple(vals)
		inQ, err := c.S.Eval.EvalQuery(conj, t)
		if err != nil {
			return &Violation{Oracle: "harness", Detail: fmt.Sprintf("eval disjunct: %v", err)}
		}
		if !inQ {
			continue
		}
		inT, err := c.S.Eval.EvalQuery(tight, t)
		if err != nil {
			return &Violation{Oracle: "harness", Detail: fmt.Sprintf("eval tightened S: %v", err)}
		}
		if !inT {
			return nil // witness found: tightening loses the witness, so the relaxation is necessary
		}
	}
	return &Violation{Oracle: "minimality",
		Detail: fmt.Sprintf("atom %s of S(%s) can be tightened to equality without dropping any witness — the translation is not as tight as expressible\nS = %s",
			atom.C, conj, s)}
}

// tightenValue returns the equality constant that strictly tightens a
// relaxed atom: the prefix itself for starts, the word for single-word
// contains patterns.
func tightenValue(c *qtree.Constraint) (qtree.Value, bool) {
	switch c.Op {
	case qtree.OpStarts:
		if s, ok := c.Val.(values.String); ok {
			return s, true
		}
	case qtree.OpContains:
		switch v := c.Val.(type) {
		case *values.Pattern:
			if ws := v.Words(); len(ws) == 1 {
				return values.String(ws[0]), true
			}
		case values.String:
			return v, true
		}
	}
	return nil, false
}

// valueCombos enumerates every assignment of n attributes over a domain of
// size dom, as index vectors.
func valueCombos(dom, n int) [][]int {
	total := 1
	for i := 0; i < n; i++ {
		total *= dom
	}
	out := make([][]int, 0, total)
	combo := make([]int, n)
	for i := 0; i < total; i++ {
		cp := make([]int, n)
		copy(cp, combo)
		out = append(out, cp)
		for j := 0; j < n; j++ {
			combo[j]++
			if combo[j] < dom {
				break
			}
			combo[j] = 0
		}
	}
	return out
}

// countLeaves returns the number of leaf nodes in the tree, in-order.
func countLeaves(n *qtree.Node) int {
	if n == nil {
		return 0
	}
	if n.Kind == qtree.KindLeaf {
		return 1
	}
	total := 0
	for _, k := range n.Kids {
		total += countLeaves(k)
	}
	return total
}

// leafAt returns the i-th leaf in-order, or nil.
func leafAt(n *qtree.Node, i int) *qtree.Node {
	leaf, _ := leafAtRec(n, i)
	return leaf
}

func leafAtRec(n *qtree.Node, i int) (*qtree.Node, int) {
	if n.Kind == qtree.KindLeaf {
		if i == 0 {
			return n, -1
		}
		return nil, i - 1
	}
	for _, k := range n.Kids {
		var leaf *qtree.Node
		leaf, i = leafAtRec(k, i)
		if leaf != nil {
			return leaf, -1
		}
		if i < 0 {
			return nil, -1
		}
	}
	return nil, i
}

// replaceLeafAt returns a copy of the tree with the i-th leaf (in-order)
// replaced by repl.
func replaceLeafAt(n *qtree.Node, i int, repl *qtree.Node) *qtree.Node {
	out, _ := replaceLeafRec(n, i, repl)
	return out
}

func replaceLeafRec(n *qtree.Node, i int, repl *qtree.Node) (*qtree.Node, int) {
	if n.Kind == qtree.KindLeaf {
		if i == 0 {
			return repl, -1
		}
		return n, i - 1
	}
	if len(n.Kids) == 0 {
		return n, i
	}
	kids := make([]*qtree.Node, len(n.Kids))
	copy(kids, n.Kids)
	for j, k := range n.Kids {
		if i < 0 {
			break
		}
		kids[j], i = replaceLeafRec(k, i, repl)
	}
	return &qtree.Node{Kind: n.Kind, Kids: kids}, i
}

// renderRelation renders a relation's tuples sorted and newline-joined —
// the byte-identity representation the oracles compare.
func renderRelation(r *engine.Relation) string {
	keys := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		keys[i] = t.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
