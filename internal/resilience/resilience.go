// Package resilience holds the per-source fault-absorption primitives the
// serving layer composes around heterogeneous sources: circuit breakers,
// bounded retry with jittered exponential backoff, hedged requests, and a
// TinyLFU admission sketch for the caches.
//
// The mediator of the paper integrates sources it does not control — any
// wrapper can be slow or flaky independently of the others — so the serving
// layer needs machinery that contains one source's misbehavior without
// degrading the union answer:
//
//   - Breaker is a per-source circuit breaker (closed → open → half-open)
//     over a sliding outcome window. A tripped breaker fails fast with the
//     typed ErrBreakerOpen instead of queueing work behind a dead source —
//     the degraded-answer contract is "typed per-source error, never silent
//     omission".
//   - Retrier bounds re-execution of transiently failed source requests,
//     with full-jitter exponential backoff so synchronized retries cannot
//     re-stampede a recovering source.
//   - Hedge launches a second attempt of a straggling request after a
//     latency-quantile delay (LatencyTracker) and takes whichever attempt
//     completes first, cancelling the loser — the classic tail-at-scale
//     tool for per-source p99 latency.
//   - Sketch is a TinyLFU admission filter (Einziger et al.): a 4-bit
//     count-min sketch with periodic aging that lets a cache reject
//     insertions whose estimated frequency is below the eviction victim's,
//     so one-off scan traffic cannot wash out the hot working set.
//
// Everything here is stdlib-only, safe for concurrent use, and — like every
// optimization layer in this repository — semantics-preserving: breakers,
// retries, and hedges only ever re-run or refuse pure per-source
// executions, so a clean (fault-free) run produces answers byte-identical
// to the unprotected path.
package resilience
