package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is the typed fast-fail a tripped circuit breaker returns.
// It is the load-bearing half of the degraded-answer contract: a source in
// the open state yields this error — which callers detect with errors.Is —
// never a silently empty (and therefore wrong) partial answer.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is a circuit breaker's position in its state machine.
type BreakerState int32

const (
	// BreakerClosed passes every request through, recording outcomes in
	// the sliding window.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails every request fast with ErrBreakerOpen until
	// OpenFor has elapsed.
	BreakerOpen
	// BreakerHalfOpen admits up to HalfOpenProbes concurrent probe
	// requests; a probe success closes the breaker, a probe failure
	// re-opens it.
	BreakerHalfOpen
)

// String returns the conventional lower-case state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig sizes a Breaker. The zero value selects working defaults.
type BreakerConfig struct {
	// Window is the sliding outcome window in executions (default 32).
	// Error rate is computed over the most recent Window outcomes.
	Window int
	// FailureRatio is the windowed error rate at or above which the
	// breaker trips (default 0.5).
	FailureRatio float64
	// MinSamples is the minimum number of windowed outcomes before the
	// ratio is meaningful; the breaker never trips on fewer (default 8).
	MinSamples int
	// OpenFor is how long a tripped breaker fails fast before letting
	// half-open probes through (default 1s).
	OpenFor time.Duration
	// HalfOpenProbes bounds the concurrent probe requests the half-open
	// state admits (default 1).
	HalfOpenProbes int
}

// withDefaults fills unset fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.FailureRatio <= 0 {
		c.FailureRatio = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a per-source circuit breaker: closed → open on a windowed
// error-rate trip, open → half-open after a cool-down, half-open → closed
// on a probe success (or back to open on a probe failure). It is safe for
// concurrent use; the common closed-state path is one short critical
// section.
//
// Protocol: call Allow before an execution — a nil result admits it, an
// ErrBreakerOpen result is the typed fast-fail — and pair every admitted
// execution with exactly one Record of its outcome.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring buffer of outcomes, true = failure
	size     int    // occupied slots
	idx      int    // next write position
	failures int    // failures currently in the window
	openedAt time.Time
	probes   int // in-flight half-open probes

	trips atomic.Uint64
}

// NewBreaker returns a closed breaker configured by cfg (zero fields take
// defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:    cfg,
		now:    time.Now,
		window: make([]bool, cfg.Window),
	}
}

// Allow reports whether a request may execute now: nil admits it (pair with
// Record), ErrBreakerOpen refuses it. In the open state the cool-down is
// checked lazily, so the transition to half-open happens on the first Allow
// after OpenFor elapses.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.probes++
		return nil
	}
}

// Record reports one admitted execution's outcome. In the closed state it
// advances the sliding window and trips the breaker when the windowed error
// rate reaches FailureRatio (with at least MinSamples outcomes); in the
// half-open state a success closes the breaker and a failure re-opens it.
// Outcomes that complete after a trip (admitted while closed, finished
// while open) are dropped — the window restarts clean on recovery.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if b.size == len(b.window) {
			if b.window[b.idx] {
				b.failures--
			}
		} else {
			b.size++
		}
		b.window[b.idx] = failure
		if failure {
			b.failures++
		}
		b.idx = (b.idx + 1) % len(b.window)
		if b.size >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureRatio*float64(b.size) {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failure {
			b.trip()
			return
		}
		b.state = BreakerClosed
		b.reset()
	case BreakerOpen:
		// Straggler from before the trip; the fresh window ignores it.
	}
}

// trip moves to the open state and restarts the cool-down. Callers hold mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips.Add(1)
	b.reset()
}

// reset clears the sliding window. Callers hold mu.
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.size, b.idx, b.failures, b.probes = 0, 0, 0, 0
}

// State returns the breaker's current state, advancing open → half-open
// when the cool-down has elapsed (so observers see the same state a caller
// of Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns the number of closed/half-open → open transitions.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }
