package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Breaker's injectable clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerStateMachine(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		Window: 8, FailureRatio: 0.5, MinSamples: 4, OpenFor: time.Second,
	})

	// Closed: failures below MinSamples never trip.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow %d: %v", i, err)
		}
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 3 failures = %v, want closed", got)
	}

	// Fourth failure reaches MinSamples at 100%% error rate: trip.
	b.Record(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow = %v, want ErrBreakerOpen", err)
	}

	// Cool-down elapses: half-open admits one probe; its success closes.
	clk.advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cool-down = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe Allow: %v", err)
	}
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}

	// The recovered window is clean: MinSamples failures are again needed.
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("recovered window tripped early: %v", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		Window: 4, FailureRatio: 0.5, MinSamples: 2, OpenFor: time.Second,
	})
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	b.Record(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// The re-trip restarts the cool-down from the probe failure.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow right after re-trip = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerHalfOpenProbeBound(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		Window: 4, FailureRatio: 0.5, MinSamples: 2,
		OpenFor: time.Second, HalfOpenProbes: 2,
	})
	b.Record(true)
	b.Record(true)
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe 3 = %v, want ErrBreakerOpen (bound is 2)", err)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{
		Window: 4, FailureRatio: 0.5, MinSamples: 4,
	})
	// Two old failures slide out before the rate is re-checked: 2 failures
	// in {T,T,F,F} trips (0.5), but after two more successes the window is
	// {F,F,F,F} — reconstruct that history to prove eviction bookkeeping.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	b.Record(false) // window {T,F,F,F}: 25% < 50%, stays closed
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
	b.Record(false) // evicts the T: {F,F,F,F}
	b.Record(true)
	b.Record(true) // {F,F,T,T}: exactly 50% — trips
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open at 50%% of a full window", got)
	}
}

func TestBreakerOpenStragglerIgnored(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{
		Window: 4, FailureRatio: 0.5, MinSamples: 2,
	})
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow: %v", err)
	}
	b.Record(true)
	b.Record(true) // trips
	b.Record(false)
	b.Record(false) // stragglers admitted pre-trip; must not probe-close
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after stragglers = %v, want open", got)
	}
}

func TestBreakerConcurrentSmoke(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 16, MinSamples: 8, OpenFor: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() == nil {
					b.Record(i%3 == 0 && g%2 == 0)
				}
				_ = b.State()
			}
		}(g)
	}
	wg.Wait()
}
