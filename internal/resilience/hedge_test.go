package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgeFastPrimaryNoHedge(t *testing.T) {
	var calls atomic.Int32
	v, err, launched, won := Hedge(context.Background(), time.Second,
		func(context.Context) (int, error) {
			calls.Add(1)
			return 7, nil
		})
	if err != nil || v != 7 {
		t.Fatalf("Hedge = (%d, %v), want (7, nil)", v, err)
	}
	if launched || won {
		t.Fatalf("launched=%v won=%v, want no hedge for a fast primary", launched, won)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1", got)
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	var calls atomic.Int32
	v, err, launched, won := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (int, error) {
			if calls.Add(1) == 1 {
				// Primary: stall until cancelled by the winning hedge.
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 7, nil
		})
	if err != nil || v != 7 {
		t.Fatalf("Hedge = (%d, %v), want (7, nil)", v, err)
	}
	if !launched || !won {
		t.Fatalf("launched=%v won=%v, want hedge launched and won", launched, won)
	}
}

func TestHedgePrimaryWinsAfterHedgeLaunch(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	// Release the primary once the hedge attempt has launched.
	go func() {
		for calls.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	v, err, launched, won := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (int, error) {
			if calls.Add(1) == 1 {
				<-release
				return 1, nil
			}
			// Hedge: slower than the released primary.
			select {
			case <-time.After(10 * time.Second):
				return 2, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		})
	if err != nil || v != 1 {
		t.Fatalf("Hedge = (%d, %v), want (1, nil)", v, err)
	}
	if !launched || won {
		t.Fatalf("launched=%v won=%v, want hedge launched but primary won", launched, won)
	}
}

func TestHedgePrimaryErrorBeforeHedgeFailsFast(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err, launched, _ := Hedge(context.Background(), time.Hour,
		func(context.Context) (int, error) {
			calls.Add(1)
			return 0, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if launched || calls.Load() != 1 {
		t.Fatalf("launched=%v calls=%d, want immediate fail-fast", launched, calls.Load())
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	primaryErr := errors.New("primary down")
	hedgeErr := errors.New("hedge down")
	var calls atomic.Int32
	_, err, launched, won := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (int, error) {
			if calls.Add(1) == 1 {
				// Outlive the hedge launch, then fail.
				select {
				case <-time.After(20 * time.Millisecond):
				case <-ctx.Done():
				}
				return 0, primaryErr
			}
			return 0, hedgeErr
		})
	if !errors.Is(err, primaryErr) {
		t.Fatalf("err = %v, want the primary's error", err)
	}
	if !launched || won {
		t.Fatalf("launched=%v won=%v", launched, won)
	}
}

func TestHedgeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		_, err, _, _ := Hedge(ctx, time.Hour,
			func(ctx context.Context) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Hedge did not return after ctx cancel")
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	var lt LatencyTracker
	if _, ok := lt.Quantile(0.95); ok {
		t.Fatal("empty tracker reported a quantile")
	}
	for i := 1; i <= 100; i++ {
		lt.Observe(time.Duration(i) * time.Millisecond)
	}
	p50, ok := lt.Quantile(0.5)
	if !ok || p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v (ok=%v), want ≈50ms", p50, ok)
	}
	p95, _ := lt.Quantile(0.95)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want ≈95ms", p95)
	}
	// Ring slides: flood with large samples and the quantile follows.
	for i := 0; i < latencySamples; i++ {
		lt.Observe(time.Second)
	}
	if p50, _ := lt.Quantile(0.5); p50 != time.Second {
		t.Fatalf("p50 after slide = %v, want 1s", p50)
	}
}

func TestHedgeDelayClamping(t *testing.T) {
	cfg := HedgeConfig{Quantile: 0.5, MinDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	if d := HedgeDelay(nil, cfg); d != 10*time.Millisecond {
		t.Fatalf("nil tracker delay = %v, want MinDelay", d)
	}
	var lt LatencyTracker
	if d := HedgeDelay(&lt, cfg); d != 10*time.Millisecond {
		t.Fatalf("empty tracker delay = %v, want MinDelay", d)
	}
	lt.Observe(time.Microsecond)
	if d := HedgeDelay(&lt, cfg); d != 10*time.Millisecond {
		t.Fatalf("below-floor delay = %v, want MinDelay", d)
	}
	for i := 0; i < latencySamples; i++ {
		lt.Observe(time.Minute)
	}
	if d := HedgeDelay(&lt, cfg); d != 100*time.Millisecond {
		t.Fatalf("above-cap delay = %v, want MaxDelay", d)
	}
	for i := 0; i < latencySamples; i++ {
		lt.Observe(50 * time.Millisecond)
	}
	if d := HedgeDelay(&lt, cfg); d != 50*time.Millisecond {
		t.Fatalf("in-range delay = %v, want the tracked quantile", d)
	}
}
