package resilience

import (
	"hash/maphash"
	"sync"
)

// sketchHashes is the number of count-min rows collapsed into one array:
// each key increments sketchHashes counters at positions derived from a
// double hash, and Estimate takes their minimum.
const sketchHashes = 4

// sketchMaxCount is the 4-bit counter ceiling. Counters saturate here and
// the periodic halving (aging) keeps estimates fresh, so 15 is plenty of
// resolution for an admission comparison.
const sketchMaxCount = 15

// Sketch is a TinyLFU admission filter (Einziger et al.): an approximate
// frequency counter over the recent access stream, backed by a 4-bit
// count-min sketch with periodic halving. A cache at capacity consults
// Admit before inserting — the candidate must be estimated strictly more
// frequent than the eviction victim — so a flood of one-off keys (a scan)
// cannot wash out the resident working set: scan keys have estimate ≤ 1
// and lose to any victim that has been touched twice.
//
// Sketch is safe for concurrent use.
type Sketch struct {
	mu       sync.Mutex
	counters []byte // two 4-bit counters per byte
	mask     uint64 // len(counters)*2 - 1; power-of-two slot count
	seed     maphash.Seed
	samples  int // touches since the last halving
	limit    int // halve when samples reaches this
}

// NewSketch returns a sketch sized for a cache of the given capacity: the
// slot count is the next power of two at or above 8× capacity (counter
// space an order beyond the cache keeps collision noise below the 1-bit
// resolution the Admit comparison needs), and the aging period is 10×
// capacity touches.
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	slots := 64
	for slots < capacity*8 {
		slots <<= 1
	}
	return &Sketch{
		counters: make([]byte, slots/2),
		mask:     uint64(slots - 1),
		seed:     maphash.MakeSeed(),
		limit:    capacity * 10,
	}
}

// positions derives the sketchHashes counter slots for key via double
// hashing of one 64-bit maphash draw.
func (s *Sketch) positions(key string) [sketchHashes]uint64 {
	h := maphash.String(s.seed, key)
	h1, h2 := h, h>>32|h<<32
	var pos [sketchHashes]uint64
	for i := range pos {
		pos[i] = (h1 + uint64(i)*h2) & s.mask
	}
	return pos
}

// get reads the 4-bit counter at slot. Callers hold mu.
func (s *Sketch) get(slot uint64) byte {
	b := s.counters[slot>>1]
	if slot&1 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

// inc increments the 4-bit counter at slot, saturating at sketchMaxCount.
// Callers hold mu.
func (s *Sketch) inc(slot uint64) {
	i := slot >> 1
	if slot&1 == 0 {
		if s.counters[i]&0x0f < sketchMaxCount {
			s.counters[i]++
		}
	} else {
		if s.counters[i]>>4 < sketchMaxCount {
			s.counters[i] += 0x10
		}
	}
}

// Touch records one access of key, aging the sketch (halving every counter)
// each time the sample budget is exhausted so estimates track the recent
// stream rather than all of history.
func (s *Sketch) Touch(key string) {
	pos := s.positions(key)
	s.mu.Lock()
	for _, p := range pos {
		s.inc(p)
	}
	s.samples++
	if s.samples >= s.limit {
		s.samples = 0
		for i := range s.counters {
			// Halve both nibbles in place; the 0x77 mask drops the bit a
			// nibble's shift would leak into its neighbor.
			s.counters[i] = (s.counters[i] >> 1) & 0x77
		}
	}
	s.mu.Unlock()
}

// Estimate returns the approximate recent access count of key (the count-min
// minimum over its slots).
func (s *Sketch) Estimate(key string) int {
	pos := s.positions(key)
	s.mu.Lock()
	min := s.get(pos[0])
	for _, p := range pos[1:] {
		if c := s.get(p); c < min {
			min = c
		}
	}
	s.mu.Unlock()
	return int(min)
}

// Admit reports whether candidate should displace victim in a full cache:
// only when the candidate's estimated frequency strictly exceeds the
// victim's. Ties keep the incumbent — the property that makes the policy
// scan-resistant.
func (s *Sketch) Admit(candidate, victim string) bool {
	pos := s.positions(candidate)
	vpos := s.positions(victim)
	s.mu.Lock()
	c := s.get(pos[0])
	for _, p := range pos[1:] {
		if e := s.get(p); e < c {
			c = e
		}
	}
	v := s.get(vpos[0])
	for _, p := range vpos[1:] {
		if e := s.get(p); e < v {
			v = e
		}
	}
	s.mu.Unlock()
	return c > v
}
