package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

func TestRetryDoSucceedsAfterTransients(t *testing.T) {
	r := NewRetrier(1, RetryConfig{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	calls := 0
	v, retries, err := Do(context.Background(), r,
		func(err error) bool { return errors.Is(err, errTransient) },
		func(context.Context) (int, error) {
			calls++
			if calls < 3 {
				return 0, errTransient
			}
			return 42, nil
		})
	if err != nil || v != 42 {
		t.Fatalf("Do = (%d, %v), want (42, nil)", v, err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
}

func TestRetryDoBoundsAttempts(t *testing.T) {
	r := NewRetrier(1, RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	calls := 0
	_, retries, err := Do(context.Background(), r,
		func(error) bool { return true },
		func(context.Context) (int, error) {
			calls++
			return 0, errTransient
		})
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want errTransient", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
}

func TestRetryDoNonRetryableFailsFast(t *testing.T) {
	r := NewRetrier(1, RetryConfig{MaxAttempts: 5})
	permanent := errors.New("permanent")
	calls := 0
	_, retries, err := Do(context.Background(), r,
		func(err error) bool { return errors.Is(err, errTransient) },
		func(context.Context) (int, error) {
			calls++
			return 0, permanent
		})
	if !errors.Is(err, permanent) || calls != 1 || retries != 0 {
		t.Fatalf("calls=%d retries=%d err=%v, want 1, 0, permanent", calls, retries, err)
	}
}

func TestRetryDoNilPredicateNeverRetries(t *testing.T) {
	r := NewRetrier(1, RetryConfig{MaxAttempts: 5})
	calls := 0
	_, _, err := Do(context.Background(), r, nil,
		func(context.Context) (int, error) {
			calls++
			return 0, errTransient
		})
	if !errors.Is(err, errTransient) || calls != 1 {
		t.Fatalf("calls=%d err=%v, want 1 call", calls, err)
	}
}

func TestRetryDoContextCancelStopsBackoff(t *testing.T) {
	r := NewRetrier(1, RetryConfig{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	_, _, err := Do(ctx, r, func(error) bool { return true },
		func(context.Context) (int, error) {
			calls++
			cancel()
			return 0, errTransient
		})
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the attempt's error, not the cancellation", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (backoff aborted by cancel)", calls)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Do blocked %v in a cancelled backoff", elapsed)
	}
}

func TestRetryDelayBounds(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}
	r := NewRetrier(7, cfg)
	for retry := 1; retry <= 7; retry++ {
		for i := 0; i < 50; i++ {
			d := r.Delay(retry)
			cap := cfg.BaseDelay << uint(retry-1)
			if cap > cfg.MaxDelay {
				cap = cfg.MaxDelay
			}
			if d <= 0 || d > cap {
				t.Fatalf("Delay(%d) = %v, want in (0, %v]", retry, d, cap)
			}
		}
	}
}

func TestRetryDelayDeterministicPerSeed(t *testing.T) {
	a := NewRetrier(99, RetryConfig{})
	b := NewRetrier(99, RetryConfig{})
	for i := 1; i <= 10; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("same-seed Delay(%d) diverged: %v vs %v", i, da, db)
		}
	}
}
