package resilience

import (
	"fmt"
	"sync"
	"testing"
)

func TestSketchEstimateGrows(t *testing.T) {
	s := NewSketch(64)
	if got := s.Estimate("cold"); got != 0 {
		t.Fatalf("untouched Estimate = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s.Touch("hot")
	}
	got := s.Estimate("hot")
	if got < 5 || got > sketchMaxCount {
		t.Fatalf("Estimate after 5 touches = %d, want in [5, %d]", got, sketchMaxCount)
	}
}

func TestSketchSaturates(t *testing.T) {
	s := NewSketch(1 << 10) // large limit: no aging during this test
	for i := 0; i < 100; i++ {
		s.Touch("k")
	}
	if got := s.Estimate("k"); got != sketchMaxCount {
		t.Fatalf("saturated Estimate = %d, want %d", got, sketchMaxCount)
	}
}

func TestSketchAgingHalves(t *testing.T) {
	s := NewSketch(1)
	s.limit = 20 // halve after 20 touches
	for i := 0; i < 10; i++ {
		s.Touch("k")
	}
	before := s.Estimate("k")
	if before < 8 {
		t.Fatalf("pre-aging Estimate = %d, want ≈10", before)
	}
	for i := 0; i < 10; i++ {
		s.Touch("other")
	}
	after := s.Estimate("k")
	if after > before/2+1 {
		t.Fatalf("post-aging Estimate = %d, want ≈%d", after, before/2)
	}
}

func TestSketchAdmitProtectsHotVictim(t *testing.T) {
	s := NewSketch(64)
	for i := 0; i < 4; i++ {
		s.Touch("victim")
	}
	s.Touch("scan-key")
	if s.Admit("scan-key", "victim") {
		t.Fatal("once-seen scan key admitted over a 4-touch victim")
	}
	// Ties keep the incumbent.
	if s.Admit("victim", "victim") {
		t.Fatal("tie admitted the candidate")
	}
	// A hotter candidate displaces a colder victim.
	for i := 0; i < 8; i++ {
		s.Touch("rising")
	}
	if !s.Admit("rising", "victim") {
		t.Fatal("8-touch candidate rejected against a 4-touch victim")
	}
}

func TestSketchScanResistance(t *testing.T) {
	// A resident working set touched repeatedly must win admission
	// comparisons against a flood of one-off scan keys.
	s := NewSketch(128)
	hot := make([]string, 16)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot-%d", i)
	}
	for round := 0; round < 4; round++ {
		for _, k := range hot {
			s.Touch(k)
		}
	}
	rejected := 0
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("scan-%d", i)
		s.Touch(k)
		if !s.Admit(k, hot[i%len(hot)]) {
			rejected++
		}
	}
	// Sketch collisions allow a few false admissions; the overwhelming
	// majority of scan keys must lose to the hot set.
	if rejected < 950 {
		t.Fatalf("only %d/1000 scan keys rejected; admission is not scan-resistant", rejected)
	}
}

func TestSketchConcurrentSmoke(t *testing.T) {
	s := NewSketch(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k-%d", i%64)
				s.Touch(k)
				_ = s.Estimate(k)
				_ = s.Admit(k, "k-0")
			}
		}(g)
	}
	wg.Wait()
}
