package resilience

import (
	"context"
	"sort"
	"sync"
	"time"
)

// HedgeConfig tunes hedged execution. The zero value selects working
// defaults.
type HedgeConfig struct {
	// Quantile is the completion-latency quantile at which the hedge
	// launches (default 0.95): an attempt still running after the source's
	// q-th latency percentile is in the tail, so a duplicate is started.
	Quantile float64
	// MinDelay floors the hedge delay — and is the delay used while the
	// latency tracker has no samples yet (default 1ms).
	MinDelay time.Duration
	// MaxDelay caps the hedge delay (default 1s).
	MaxDelay time.Duration
}

// withDefaults fills unset fields.
func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.95
	}
	if c.MinDelay <= 0 {
		c.MinDelay = time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	return c
}

// latencySamples is the tracker's ring size: large enough for a stable tail
// quantile, small enough that a sort-on-demand stays trivial.
const latencySamples = 128

// LatencyTracker keeps a sliding ring of recent completion latencies and
// answers quantile queries over it — the adaptive half of the hedging
// policy: the hedge delay follows each source's own latency distribution
// instead of a global constant.
type LatencyTracker struct {
	mu   sync.Mutex
	ring [latencySamples]time.Duration
	n    int // occupied
	idx  int // next write
}

// Observe records one completed execution's latency.
func (t *LatencyTracker) Observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.idx] = d
	t.idx = (t.idx + 1) % latencySamples
	if t.n < latencySamples {
		t.n++
	}
	t.mu.Unlock()
}

// Quantile returns the q-th latency quantile over the resident samples;
// ok is false while no sample has been observed.
func (t *LatencyTracker) Quantile(q float64) (d time.Duration, ok bool) {
	t.mu.Lock()
	if t.n == 0 {
		t.mu.Unlock()
		return 0, false
	}
	samples := make([]time.Duration, t.n)
	copy(samples, t.ring[:t.n])
	t.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)))
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i], true
}

// HedgeDelay resolves the delay after which a hedge should launch: the
// tracked Quantile latency clamped to [MinDelay, MaxDelay], or MinDelay
// while the tracker is empty (or nil).
func HedgeDelay(t *LatencyTracker, cfg HedgeConfig) time.Duration {
	cfg = cfg.withDefaults()
	if t == nil {
		return cfg.MinDelay
	}
	q, ok := t.Quantile(cfg.Quantile)
	switch {
	case !ok, q < cfg.MinDelay:
		return cfg.MinDelay
	case q > cfg.MaxDelay:
		return cfg.MaxDelay
	default:
		return q
	}
}

// Hedge runs fn, and if it has not completed after delay, launches a second
// identical attempt and returns whichever completes successfully first,
// cancelling the loser's context. fn must therefore be idempotent and honor
// its context — both true of the pure per-source selections this package
// protects, which is also why hedging is semantics-preserving: either
// attempt computes the same answer.
//
// Outcomes: the first successful attempt wins. If the primary fails before
// the hedge launches, its error returns immediately (the retry layer's
// job, not the hedge's). If both attempts fail, the primary's error is
// returned. launched reports whether the hedge started; won reports whether
// the hedge's result (value or error, per the rules above) was the one
// returned.
func Hedge[T any](ctx context.Context, delay time.Duration, fn func(context.Context) (T, error)) (v T, err error, launched, won bool) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		v     T
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2) // buffered: the losing attempt never blocks
	run := func(hedge bool) {
		v, err := fn(hctx)
		ch <- outcome{v, err, hedge}
	}
	go run(false)

	timer := time.NewTimer(delay)
	defer timer.Stop()

	var primaryErr error
	pending := 1
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				return o.v, nil, launched, o.hedge
			}
			if !o.hedge {
				primaryErr = o.err
			}
			if !launched {
				// Primary failed before the hedge fired: fail fast.
				return o.v, o.err, false, false
			}
			if pending == 0 {
				// Both attempts failed; report the primary's error as the
				// representative one.
				if primaryErr != nil {
					return v, primaryErr, true, false
				}
				return v, o.err, true, o.hedge
			}
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				go run(true)
			}
		case <-ctx.Done():
			return v, ctx.Err(), launched, false
		}
	}
}
