package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryConfig bounds a Retrier. The zero value selects working defaults.
type RetryConfig struct {
	// MaxAttempts is the total number of executions allowed, the first
	// one included; 1 disables retry (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 100ms).
	MaxDelay time.Duration
}

// withDefaults fills unset fields.
func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Millisecond
	}
	return c
}

// Retrier re-executes transiently failed work a bounded number of times
// with full-jitter exponential backoff: the delay before retry n is uniform
// in (0, min(BaseDelay·2ⁿ⁻¹, MaxDelay)]. Full jitter decorrelates the
// retries of concurrent callers, so a burst of failures against one source
// does not come back as a synchronized second burst.
type Retrier struct {
	cfg RetryConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier returns a retrier configured by cfg (zero fields take
// defaults), with jitter drawn from the given seed — deterministic seeds
// make backoff schedules replayable in tests.
func NewRetrier(seed int64, cfg RetryConfig) *Retrier {
	return &Retrier{cfg: cfg.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// MaxAttempts returns the configured execution bound.
func (r *Retrier) MaxAttempts() int { return r.cfg.MaxAttempts }

// Delay returns the jittered backoff before the retry-th retry (retry >= 1).
func (r *Retrier) Delay(retry int) time.Duration {
	d := r.cfg.BaseDelay << uint(retry-1)
	if d <= 0 || d > r.cfg.MaxDelay { // <= 0 guards shift overflow
		d = r.cfg.MaxDelay
	}
	r.mu.Lock()
	frac := r.rng.Float64()
	r.mu.Unlock()
	j := time.Duration(frac * float64(d))
	if j <= 0 {
		j = 1
	}
	return j
}

// Do runs fn up to MaxAttempts times, sleeping the jittered backoff between
// attempts, until it succeeds, fails non-retryably, or the context ends. It
// returns fn's last result, and the number of retries actually performed
// (0 when the first attempt settled it). A nil retryable predicate never
// retries.
func Do[T any](ctx context.Context, r *Retrier, retryable func(error) bool, fn func(context.Context) (T, error)) (v T, retries int, err error) {
	for attempt := 1; ; attempt++ {
		v, err = fn(ctx)
		if err == nil || retryable == nil || !retryable(err) || attempt >= r.cfg.MaxAttempts {
			return v, attempt - 1, err
		}
		if serr := SleepCtx(ctx, r.Delay(attempt)); serr != nil {
			return v, attempt - 1, err // the attempt's error, not the cancellation
		}
	}
}

// SleepCtx sleeps for d or until ctx ends, whichever comes first.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
