// Command bookstore reproduces the bookstore mediation of Examples 1 and 2:
// a mediator integrates Amazon (structured author search) and Clbooks
// (word-containment author search only), translates the user's query for
// each, executes both against a synthetic catalog, and shows the false
// positives that Clbooks' relaxation admits and the mediator's filter
// removes.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/sources"
	"repro/querymap"
)

func main() {
	amazon, clbooks := querymap.Amazon(), querymap.Clbooks()
	med := querymap.NewMediator(amazon, clbooks)

	// Synthetic catalog, seeded with Example 1's adversarial names.
	books := sources.GenBooks(99, 60)
	books = append(books,
		sources.Book{Title: "reversed decoy", Ln: "Tom", Fn: "Clancy", Year: 1997, Month: 1, Day: 5, Category: "D.3", Publisher: "oreilly", IDNo: "000000001A", Keywords: []string{"decoy"}},
		sources.Book{Title: "middle-name decoy", Ln: "Clancy", Fn: "Joe Tom", Year: 1996, Month: 7, Day: 9, Category: "H.2", Publisher: "mit-press", IDNo: "000000002B", Keywords: []string{"decoy"}},
		sources.Book{Title: "the hunt for red october", Ln: "Clancy", Fn: "Tom", Year: 1997, Month: 3, Day: 1, Category: "D.3", Publisher: "oreilly", IDNo: "000000003C", Keywords: []string{"hunt"}},
	)
	catalog := sources.BookRelation("catalog", books)
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}

	q := querymap.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`)
	fmt.Println("user query Q:", q)
	fmt.Println()

	tr, err := med.Translate(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range tr.Sources {
		fmt.Printf("%-8s S(Q) = %s\n", st.Source.Name+":", st.Query)
		fmt.Printf("%-8s F    = %s\n", "", st.Residue)
		raw, err := data[st.Source.Name].Select(st.Query, st.Source.Eval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s raw source answers: %d\n", "", raw.Len())
		if st.Source.Name == "clbooks" {
			for _, t := range raw.Tuples {
				author, _ := t.Get(querymap.Attr{Name: "author"})
				title, _ := t.Get(querymap.Attr{Name: "ti"})
				fmt.Printf("%-8s   %-20s %s\n", "", author, title)
			}
		}
		fmt.Println()
	}

	result, _, err := med.ExecuteUnion(q, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mediated result after filtering: %d book(s)\n", result.Len())
	for _, t := range result.Tuples {
		author, _ := t.Get(querymap.Attr{Name: "author"})
		title, _ := t.Get(querymap.Attr{Name: "ti"})
		fmt.Printf("  %-20s %s\n", author, title)
	}
	fmt.Println()
	fmt.Println(`note: Clbooks returned "Tom, Clancy" and "Clancy, Joe Tom" — word`)
	fmt.Println(`containment cannot distinguish them from "Clancy, Tom" (Example 1);`)
	fmt.Println("the mediator's filter re-applied Q and removed them.")
}
