// Command customsource shows how a downstream user integrates their own
// source with the public querymap API, end to end: define the target's
// capabilities, register conversion functions, write mapping rules in the
// DSL, lint them, translate queries, and execute against data with the
// source's native semantics.
//
// The scenario: a music catalog. The mediator speaks in artist first/last
// name, a release year+month, and a genre code; the source stores a
// combined "artist" name, a "released" date with period search, and coarse
// genre shelves.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/querymap"
)

// splitName splits "Last, First" (or bare "Last") into components.
func splitName(name string) (ln, fn string) {
	if i := strings.Index(name, ","); i >= 0 {
		return strings.TrimSpace(name[:i]), strings.TrimSpace(name[i+1:])
	}
	return strings.TrimSpace(name), ""
}

const musicRules = `
# Mapping rules for the "vinylvault" music source.

rule M1 {
  match [artist-ln = L], [artist-fn = F];
  where Value(L), Value(F);
  let A = LnFnToName(L, F);
  emit exact [artist = A];
}

rule M2 {
  match [artist-ln = L];
  where Value(L);
  emit exact [artist = L];
}

rule M3 {
  match [ryear = Y], [rmonth = M];
  where Value(Y), Value(M);
  let D = MonthYearToDate(M, Y);
  emit exact [released during D];
}

rule M4 {
  match [ryear = Y];
  where Value(Y);
  let D = YearToDate(Y);
  emit exact [released during D];
}

rule M5 {
  match [genre = G];
  where Value(G);
  let S = Shelf(G);
  emit [shelf = S];
}
`

// shelves maps fine mediator genres to the source's coarse shelves —
// an inexact mapping, like the paper's category → subject rule R9.
var shelves = map[string]string{
	"bebop":     "jazz",
	"cool-jazz": "jazz",
	"delta":     "blues",
	"chicago":   "blues",
	"baroque":   "classical",
	"romantic":  "classical",
}

func main() {
	// 1. Conversion functions. LnFnToName / MonthYearToDate / YearToDate
	// come with the library; Shelf is ours.
	reg := querymap.BaseRegistry()
	reg.RegisterAction("Shelf", func(b querymap.Binding, args []string) (querymap.BoundVal, error) {
		v, err := b.Value(args[0])
		if err != nil {
			return querymap.BoundVal{}, err
		}
		g, ok := querymap.StringValue(v)
		if !ok {
			return querymap.BoundVal{}, fmt.Errorf("genre must be a string, got %s", v.Kind())
		}
		s, ok := shelves[g]
		if !ok {
			return querymap.BoundVal{}, fmt.Errorf("unknown genre %q", g)
		}
		return querymap.ValueOfString(s), nil
	})

	// 2. The target's native vocabulary.
	target := querymap.NewTarget("vinylvault",
		querymap.Capability{Attr: "artist", Op: "=", ValueKinds: []string{"string"}},
		querymap.Capability{Attr: "released", Op: "during", ValueKinds: []string{"date"}},
		querymap.Capability{Attr: "shelf", Op: "=", ValueKinds: []string{"string"}},
	)

	// 3. Parse, assemble, and lint the specification.
	spec, err := querymap.NewSpec("K_vinylvault", target, reg, querymap.MustParseRules(musicRules)...)
	if err != nil {
		log.Fatal(err)
	}
	if problems := querymap.LintSpec(spec); len(problems) > 0 {
		for _, p := range problems {
			fmt.Println("lint:", p)
		}
	}

	// 4. Translate queries.
	tr := querymap.NewTranslator(spec)
	for _, qs := range []string{
		`[artist-ln = "Davis"] and [artist-fn = "Miles"] and [ryear = 1959] and [rmonth = 8]`,
		`[genre = "bebop"] or [genre = "cool-jazz"]`,
		`([artist-ln = "Monk"] or [artist-ln = "Powell"]) and [ryear = 1957]`,
	} {
		q := querymap.MustParse(qs)
		mapped, filter, err := tr.TranslateWithFilter(q, querymap.AlgTDQM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Q:      ", q)
		fmt.Println("S(Q):   ", mapped)
		fmt.Println("filter: ", filter)
		fmt.Println()
	}

	// 5. Execute against data. Tuples carry both vocabularies (the
	// conceptual-relation view of the paper's Section 2).
	records := []struct {
		ln, fn string
		y, m   int
		genre  string
	}{
		{"Davis", "Miles", 1959, 8, "cool-jazz"},
		{"Davis", "Miles", 1970, 3, "bebop"},
		{"Monk", "Thelonious", 1957, 7, "bebop"},
		{"Johnson", "Robert", 1936, 11, "delta"},
	}
	rel := querymap.NewRelation("vault")
	for _, r := range records {
		t := make(querymap.Tuple)
		t.Set(querymap.Attr{Name: "artist-ln"}, querymap.Str(r.ln))
		t.Set(querymap.Attr{Name: "artist-fn"}, querymap.Str(r.fn))
		t.Set(querymap.Attr{Name: "ryear"}, querymap.Int(int64(r.y)))
		t.Set(querymap.Attr{Name: "rmonth"}, querymap.Int(int64(r.m)))
		t.Set(querymap.Attr{Name: "genre"}, querymap.Str(r.genre))
		t.Set(querymap.Attr{Name: "artist"}, querymap.Str(r.ln+", "+r.fn))
		t.Set(querymap.Attr{Name: "released"}, querymap.Date(r.y, r.m, 1))
		t.Set(querymap.Attr{Name: "shelf"}, querymap.Str(shelves[r.genre]))
		rel.Tuples = append(rel.Tuples, t)
	}

	q := querymap.MustParse(`[artist-ln = "Davis"] and [genre = "cool-jazz"]`)
	mapped, filter, err := tr.TranslateWithFilter(q, querymap.AlgTDQM)
	if err != nil {
		log.Fatal(err)
	}
	// The source's artist attribute has structured-name semantics: a
	// query name "Last" matches any "Last, First" (which is what makes
	// rule M2 exact). Install it as an operator override — the same
	// technique the built-in Amazon source uses.
	ev := querymap.NewEvaluator()
	ev.Override("artist", "=", func(tv, cv querymap.Value) (bool, error) {
		stored, _ := querymap.StringValue(tv)
		queried, _ := querymap.StringValue(cv)
		sLn, sFn := splitName(stored)
		qLn, qFn := splitName(queried)
		return sLn == qLn && (qFn == "" || sFn == qFn), nil
	})
	raw, err := rel.Select(mapped, ev)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := raw.Select(filter, ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s\n", q)
	fmt.Printf("source returned %d record(s); %d after filtering\n", raw.Len(), exact.Len())
	for _, t := range exact.Tuples {
		artist, _ := t.Get(querymap.Attr{Name: "artist"})
		released, _ := t.Get(querymap.Attr{Name: "released"})
		fmt.Printf("  %-22s released %s\n", artist, released)
	}
}
