// Command mapserver reproduces Example 8 / Figure 9: a mediator speaking in
// half-plane bounds (xmin/xmax/ymin/ymax) queries a map source G speaking in
// rectangle attributes (xrange/yrange) and corner attributes (cll/cur). G's
// attribute pairs are interdependent, which produces *redundant*
// cross-matchings — the case where the cheap safety test is conservative
// and the precise Theorem 3 test recognizes separability.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qtree"
	"repro/internal/sources"
	"repro/querymap"
)

func main() {
	g := querymap.MapSource()
	tr := core.NewTranslator(g.Spec)

	q := querymap.MustParse(`[xmin = 10] and [xmax = 30] and [ymin = 20] and [ymax = 40]`)
	fmt.Println("mediator query Q:", q)

	s, err := tr.Translate(q, querymap.AlgSCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated S(Q): ", s)
	fmt.Println()

	// Safety vs. precise separability for (f1 f2)(f3 f4).
	c1 := qtree.SetOfConstraints(querymap.MustParse(`[xmin = 10] and [xmax = 30]`))
	c2 := qtree.SetOfConstraints(querymap.MustParse(`[ymin = 20] and [ymax = 40]`))
	delta, err := tr.CrossMatchings([]*qtree.ConstraintSet{c1, c2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-matchings of (f1 f2)(f3 f4): %d\n", len(delta))
	for _, m := range delta {
		fmt.Println("  ", m)
	}

	oracle := gridOracle(g)
	sep, err := tr.SeparableBase([]*qtree.ConstraintSet{c1, c2}, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Definition 5 safety: unsafe (cross-matchings exist)\n")
	fmt.Printf("Theorem 3 precise separability: %v — the cross-matchings are redundant\n", sep)
	fmt.Println()

	// The Figure 9 witness: point (50,30) is inside g3 = [cll = (10,20)]
	// but outside the rectangle g1 g2.
	pt := sources.MapTuple(50, 30)
	inG3, _ := g.Eval.EvalQuery(querymap.MustParse(`[cll = (10,20)]`), pt)
	inRect, _ := g.Eval.EvalQuery(querymap.MustParse(`[xrange = (10:30)] and [yrange = (20:40)]`), pt)
	fmt.Printf("point (50,30): in g3=%v, in g1g2=%v (Figure 9)\n", inG3, inRect)
	fmt.Println()

	// Execute S(Q) on a grid of map objects and confirm it selects exactly
	// the rectangle.
	var rel engine.Relation
	for x := 0.0; x <= 50; x += 10 {
		for y := 0.0; y <= 50; y += 10 {
			rel.Tuples = append(rel.Tuples, sources.MapTuple(x, y))
		}
	}
	sel, err := rel.Select(s, g.Eval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objects on a 6x6 grid selected by S(Q): %d (the 3x3 sub-grid of the rectangle)\n", sel.Len())
}

// gridOracle decides subsumption by exhaustive evaluation over a coordinate
// grid covering the example's geometry.
func gridOracle(g *querymap.Source) core.SubsumptionOracle {
	var grid []engine.Tuple
	for x := -10.0; x <= 60; x += 5 {
		for y := -10.0; y <= 60; y += 5 {
			grid = append(grid, sources.MapTuple(x, y))
		}
	}
	return func(broader, narrower *qtree.Node) (bool, error) {
		for _, tup := range grid {
			inN, err := g.Eval.EvalQuery(narrower, tup)
			if err != nil {
				return false, err
			}
			if !inN {
				continue
			}
			inB, err := g.Eval.EvalQuery(broader, tup)
			if err != nil {
				return false, err
			}
			if !inB {
				return false, nil
			}
		}
		return true, nil
	}
}
