// Command digitallibrary reproduces Example 3: a mediator exports the views
// fac(ln, fn, bib, dept) and pub(ti, ln, fn) integrated from source T1
// (paper, aubib) and source T2 (prof with coded departments), and answers
// "papers written by CS faculty interested in data mining" — a query with
// both join and selection constraints, a proximity relaxation, and a
// department-code conversion.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/sources"
	"repro/querymap"
)

func main() {
	t1, t2 := querymap.LibraryT1(), querymap.LibraryT2()
	med := querymap.NewMediator(t1, t2)
	med.Glue = sources.LibraryGlue()

	q := querymap.MustParse(
		`[fac.ln = pub.ln] and [fac.fn = pub.fn] and ` +
			`[fac.bib contains data(near)mining] and [fac.dept = cs]`)
	fmt.Println("user query Q:")
	fmt.Println("  ", q)
	fmt.Println()

	tr, err := med.Translate(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range tr.Sources {
		fmt.Printf("S_%s(Q) = %s\n", st.Source.Name, st.Query)
	}
	fmt.Println("filter F =", tr.Filter)
	fmt.Println()
	fmt.Println("observations (as in the paper):")
	fmt.Println(" - the joins a ∧ b map together to one native join on the combined")
	fmt.Println("   name attributes (constraint dependency, rule R5)")
	fmt.Println(" - T1 lacks the (near) operator, so c relaxes to keyword conjunction")
	fmt.Println(" - T2 stores departments as codes: cs ↦ 230 (rule R7)")
	fmt.Println(" - only c is realized inexactly, so F = c")
	fmt.Println()

	// Execute the full Eq. 2 pipeline on synthetic data.
	people, papers := sources.GenLibrary(2026, 14, 40)
	data := map[string]*engine.Relation{
		"t1": sources.T1Relation(people, papers),
		"t2": sources.T2Relation(people),
	}
	result, _, err := med.ExecuteJoin(q, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mediated answers: %d tuple(s)\n", result.Len())
	for _, t := range result.Tuples {
		name, _ := t.Get(querymap.Attr{View: "fac", Rel: "aubib", Name: "name"})
		title, _ := t.Get(querymap.Attr{View: "pub", Rel: "paper", Name: "ti"})
		fmt.Printf("  %-22s %s\n", name, title)
	}
}
