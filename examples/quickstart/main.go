// Command quickstart is the smallest end-to-end use of the querymap
// library: define a mapping specification in the rule DSL, translate a
// query with each algorithm, and inspect the filter query.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/querymap"
)

func main() {
	// The target stores names in a combined "author" attribute and
	// publication dates in a "pdate" attribute with period search — the
	// paper's Figure 3 specification for Amazon. Construction options
	// configure the translator; a shared matchings cache lets repeated
	// constraint sets across queries reuse rule-matching work.
	src := querymap.Amazon()
	tr := querymap.NewTranslator(src.Spec,
		querymap.WithMatchCache(querymap.NewMatchCache(0)))

	// --- Simple conjunction (Algorithm SCM) -----------------------------
	q1 := querymap.MustParse(`[ln = "Clancy"] and [fn = "Tom"] and [pyear = 1997] and [pmonth = 5]`)
	s1, err := tr.Translate(q1, querymap.AlgSCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original:  ", q1)
	fmt.Println("translated:", s1)
	fmt.Println()

	// --- Complex query (Algorithm TDQM vs. the DNF baseline) ------------
	q2 := querymap.MustParse(
		`(([ln = "Clancy"] and [fn = "Tom"]) or [kwd contains thriller]) and ` +
			`[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)
	viaTDQM, err := tr.Translate(q2, querymap.AlgTDQM)
	if err != nil {
		log.Fatal(err)
	}
	viaDNF, err := tr.Translate(q2, querymap.AlgDNF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original:  ", q2)
	fmt.Println("TDQM:      ", viaTDQM)
	fmt.Printf("            (%d parse-tree nodes)\n", viaTDQM.Size())
	fmt.Println("DNF:       ", viaDNF)
	fmt.Printf("            (%d parse-tree nodes — same answers, bigger query)\n", viaDNF.Size())
	fmt.Println()

	// --- Filter queries (Eq. 3) -----------------------------------------
	// Do is the context-first entry point: one call returns the mapped
	// query, the filter query, and the Stats for just this translation.
	q3 := querymap.MustParse(`[ti contains java(near)jdk] and [publisher = "oreilly"]`)
	res, err := tr.Do(context.Background(), q3, querymap.AlgTDQM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original:  ", q3)
	fmt.Println("translated:", res.Mapped)
	fmt.Println("filter F:  ", res.Filter)
	fmt.Println("(the target has no proximity operator; near relaxes to (^)")
	fmt.Println(" and the mediator re-checks the original constraint)")
}
