// Command qcheck drives the semantic conformance harness of
// internal/conformance: randomized execute-and-check testing of the
// translation contract (Definition 1) and of the serving layer's
// equivalence under concurrency and injected source faults.
//
// Every case derives from one seed: a synthetic scenario, a random query,
// and an adversarially seeded dataset. Five oracles run per case —
// subsumption, filter-exactness, minimality probing, compose equivalence
// (sequential two-hop vs offline-composed one-hop), and serve equivalence
// (optionally fault-injected). The first failing case is shrunk to a
// minimal reproducer and printed with a replayable seed string.
//
// Usage:
//
//	qcheck -n 500                  # check 500 consecutive seeds
//	qcheck -n 100 -faults         # include the fault-injected serve oracle
//	qcheck -replay qc1:5k         # re-check one failing seed
//	qcheck -replay qc1:5k -shrink=false
//	                              # replay without minimizing
//	qcheck -n 200 -plant nosuppression
//	                              # self-test: plant a known bug and watch
//	                              # the oracles catch it (exit status 0 iff
//	                              # the plant IS caught)
//	qcheck -n 200 -plant badindex # self-test: serve stale index snapshots,
//	                              # caught by serve equivalence
//	qcheck -n 200 -plant badbreaker
//	                              # self-test: breaker silently omits a
//	                              # tripped source, caught by serve
//	                              # equivalence
//	qcheck -n 200 -oracle compose # run only the spec-composition oracle
//
// Exit status: 0 when every case conforms (or, with -plant, when the
// planted bug is caught), 1 on a violation, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/conformance"
)

func main() {
	n := flag.Int("n", 200, "number of consecutive seeds to check")
	seed := flag.Int64("seed", 1, "first seed")
	replay := flag.String("replay", "", "replay one case from a qc1:... seed string")
	shrink := flag.Bool("shrink", true, "shrink failing cases to a minimal reproducer")
	faults := flag.Bool("faults", false, "enable the fault-injected serve equivalence oracle")
	plant := flag.String("plant", "", "plant a known bug: nosuppression | dropfilter | badcompose | badindex | badbreaker (self-test)")
	oracle := flag.String("oracle", "", "restrict the run to one oracle: subsumption | filter-exactness | minimality | compose | serve-equivalence")
	flag.Parse()

	opts := conformance.Options{Faults: *faults, Oracle: *oracle}
	switch *plant {
	case "":
	case string(conformance.PlantNoSuppression):
		opts.Plant = conformance.PlantNoSuppression
	case string(conformance.PlantDropFilter):
		opts.Plant = conformance.PlantDropFilter
	case string(conformance.PlantBadCompose):
		opts.Plant = conformance.PlantBadCompose
	case string(conformance.PlantBadIndex):
		opts.Plant = conformance.PlantBadIndex
	case string(conformance.PlantBadBreaker):
		opts.Plant = conformance.PlantBadBreaker
	default:
		fmt.Fprintf(os.Stderr, "qcheck: unknown -plant %q (want nosuppression, dropfilter, badcompose, badindex, or badbreaker)\n", *plant)
		os.Exit(2)
	}
	h := conformance.New(opts)

	start := *seed
	count := *n
	if *replay != "" {
		s, err := conformance.ParseSeedString(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qcheck: %v\n", err)
			os.Exit(2)
		}
		start, count = s, 1
	}

	t0 := time.Now()
	rep := h.Run(start, count, *shrink)
	elapsed := time.Since(t0).Round(time.Millisecond)

	if len(rep.Failures) == 0 {
		fmt.Printf("qcheck: %d case(s) passed all oracles in %s (seeds %d..%d, faults=%v)\n",
			rep.Cases, elapsed, start, start+int64(rep.Cases)-1, *faults)
		if opts.Plant != conformance.PlantNone {
			fmt.Fprintf(os.Stderr, "qcheck: planted bug %q was NOT caught — the oracles have a blind spot\n", opts.Plant)
			os.Exit(1)
		}
		return
	}

	f := rep.Failures[0]
	fmt.Printf("qcheck: violation after %d case(s) in %s\n\n%s\n", rep.Cases, elapsed, f.Reproducer())
	if opts.Plant != conformance.PlantNone {
		fmt.Printf("\nqcheck: planted bug %q caught as intended\n", opts.Plant)
		return
	}
	os.Exit(1)
}
