package main

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/serve"
)

func testServer(t *testing.T) *server {
	t.Helper()
	return newServer(7, 120, serve.Config{CacheSize: 64})
}

func TestHandleTranslate(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/translate?q="+url.QueryEscape(`[ln = "Clancy"] and [fn = "Tom"]`), nil)
	rec := httptest.NewRecorder()
	s.handleTranslate(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out translationJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Sources) != 2 {
		t.Fatalf("got %d source translations", len(out.Sources))
	}
	if out.Sources[0].Source != "amazon" || !strings.Contains(out.Sources[0].Translated, "Clancy, Tom") {
		t.Errorf("amazon translation = %+v", out.Sources[0])
	}
	if out.Sources[1].Source != "clbooks" || !strings.Contains(out.Sources[1].Translated, "contains") {
		t.Errorf("clbooks translation = %+v", out.Sources[1])
	}
}

func TestHandleQueryFiltersFalsePositives(t *testing.T) {
	s := testServer(t)
	q := `[ln = "Clancy"] and [fn = "Tom"]`
	req := httptest.NewRequest("GET", "/query?q="+url.QueryEscape(q), nil)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out queryResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// Reference: evaluate Q directly.
	direct, err := s.catalog.Select(mustParse(t, q), s.med.Eval)
	if err != nil {
		t.Fatal(err)
	}
	if out.AnswerCount != direct.Len() {
		t.Errorf("mediated %d answers, direct evaluation %d", out.AnswerCount, direct.Len())
	}
	for _, row := range out.Answers {
		if !strings.Contains(row["author"], "Clancy, Tom") {
			t.Errorf("answer with wrong author survived filtering: %v", row)
		}
	}
}

func TestHandleTranslateBadQuery(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/translate?q=%5Bgarbage", nil)
	rec := httptest.NewRecorder()
	s.handleTranslate(rec, req)
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

func TestHandleSources(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/sources", nil)
	rec := httptest.NewRecorder()
	s.handleSources(rec, req)
	var out []sourceInfoJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !strings.Contains(out[0].Rules, "rule R2") {
		t.Errorf("sources = %+v", out)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	q := "/query?q=" + url.QueryEscape(`[ln = "Clancy"] and [fn = "Tom"]`)
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		s.handleQuery(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code != 200 {
			t.Fatalf("query status %d: %s", rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("stats status %d: %s", rec.Code, rec.Body)
	}
	var st serve.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("cache misses/hits = %d/%d, want 1/2", st.CacheMisses, st.CacheHits)
	}
	for _, name := range []string{"amazon", "clbooks"} {
		if st.Sources[name].Executions != 3 {
			t.Errorf("source %s executions = %d, want 3", name, st.Sources[name].Executions)
		}
	}
}

func mustParse(t *testing.T, s string) *qtree.Node {
	t.Helper()
	q, err := qparse.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
