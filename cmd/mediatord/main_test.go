package main

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/serve"
)

func testServer(t *testing.T) *server {
	t.Helper()
	return newServer(7, 120, serve.Config{CacheSize: 64})
}

func TestHandleTranslate(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/translate?q="+url.QueryEscape(`[ln = "Clancy"] and [fn = "Tom"]`), nil)
	rec := httptest.NewRecorder()
	s.handleTranslate(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out translationJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Sources) != 2 {
		t.Fatalf("got %d source translations", len(out.Sources))
	}
	if out.Sources[0].Source != "amazon" || !strings.Contains(out.Sources[0].Translated, "Clancy, Tom") {
		t.Errorf("amazon translation = %+v", out.Sources[0])
	}
	if out.Sources[1].Source != "clbooks" || !strings.Contains(out.Sources[1].Translated, "contains") {
		t.Errorf("clbooks translation = %+v", out.Sources[1])
	}
}

func TestHandleQueryFiltersFalsePositives(t *testing.T) {
	s := testServer(t)
	q := `[ln = "Clancy"] and [fn = "Tom"]`
	req := httptest.NewRequest("GET", "/query?q="+url.QueryEscape(q), nil)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out queryResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// Reference: evaluate Q directly.
	direct, err := s.catalog.Select(mustParse(t, q), s.med.Eval)
	if err != nil {
		t.Fatal(err)
	}
	if out.AnswerCount != direct.Len() {
		t.Errorf("mediated %d answers, direct evaluation %d", out.AnswerCount, direct.Len())
	}
	for _, row := range out.Answers {
		if !strings.Contains(row["author"], "Clancy, Tom") {
			t.Errorf("answer with wrong author survived filtering: %v", row)
		}
	}
}

func TestHandleTranslateBadQuery(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/translate?q=%5Bgarbage", nil)
	rec := httptest.NewRecorder()
	s.handleTranslate(rec, req)
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

func TestHandleSources(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/sources", nil)
	rec := httptest.NewRecorder()
	s.handleSources(rec, req)
	var out []sourceInfoJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !strings.Contains(out[0].Rules, "rule R2") {
		t.Errorf("sources = %+v", out)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	q := "/query?q=" + url.QueryEscape(`[ln = "Clancy"] and [fn = "Tom"]`)
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		s.handleQuery(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code != 200 {
			t.Fatalf("query status %d: %s", rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("stats status %d: %s", rec.Code, rec.Body)
	}
	var st serve.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3", st.Requests)
	}
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("cache misses/hits = %d/%d, want 1/2", st.CacheMisses, st.CacheHits)
	}
	for _, name := range []string{"amazon", "clbooks"} {
		if st.Sources[name].Executions != 3 {
			t.Errorf("source %s executions = %d, want 3", name, st.Sources[name].Executions)
		}
	}
}

func TestHandleMetrics(t *testing.T) {
	s := testServer(t)
	q := "/query?q=" + url.QueryEscape(`[ln = "Clancy"] and [fn = "Tom"]`)
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		s.handleQuery(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code != 200 {
			t.Fatalf("query status %d: %s", rec.Code, rec.Body)
		}
	}

	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	samples, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	find := func(name string, labels ...string) (float64, bool) {
		for _, sm := range samples {
			if sm.Name != name {
				continue
			}
			ok := true
			for i := 0; i+1 < len(labels); i += 2 {
				if sm.Label(labels[i]) != labels[i+1] {
					ok = false
					break
				}
			}
			if ok {
				return sm.Value, true
			}
		}
		return 0, false
	}
	if v, ok := find("qmap_serve_requests_total"); !ok || v != 2 {
		t.Errorf("qmap_serve_requests_total = %v (present %v), want 2", v, ok)
	}
	if v, ok := find("qmap_cache_hits_total"); !ok || v != 1 {
		t.Errorf("qmap_cache_hits_total = %v (present %v), want 1", v, ok)
	}
	if v, ok := find("qmap_source_latency_seconds_bucket", "source", "amazon", "le", "+Inf"); !ok || v != 2 {
		t.Errorf("amazon +Inf latency bucket = %v (present %v), want 2", v, ok)
	}
	if v, ok := find("qmap_rule_fires_total", "spec", "K_Amazon", "rule", "R2"); !ok || v < 1 {
		t.Errorf("qmap_rule_fires_total{spec=K_Amazon,rule=R2} = %v (present %v), want >= 1", v, ok)
	}
	if _, ok := find("go_goroutines"); !ok {
		t.Error("go_goroutines runtime gauge missing from scrape")
	}
}

func TestHandleTrace(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/trace?q="+url.QueryEscape(`[ln = "Clancy"] and [fn = "Tom"]`), nil)
	rec := httptest.NewRecorder()
	s.handleTrace(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var root obs.Span
	if err := json.Unmarshal(rec.Body.Bytes(), &root); err != nil {
		t.Fatal(err)
	}
	if root.Kind != obs.KindTranslate {
		t.Fatalf("root kind = %q, want %q", root.Kind, obs.KindTranslate)
	}
	if n := len(root.FindAll(obs.KindSource)); n != 2 {
		t.Errorf("%d source spans, want 2", n)
	}
	if n := len(root.FindAll(obs.KindSCM)); n == 0 {
		t.Error("no scm spans in trace")
	}
	if err := obs.Verify(&root); err != nil {
		t.Errorf("trace fails invariants: %v", err)
	}

	// /trace bypasses the translation cache, so the same query traces the
	// same tree twice.
	rec2 := httptest.NewRecorder()
	s.handleTrace(rec2, httptest.NewRequest("GET", req.URL.String(), nil))
	if rec.Body.String() != rec2.Body.String() {
		t.Error("two /trace responses for the same query differ")
	}
}

func TestHandlePprofIndex(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index status %d, body %.80q", rec.Code, rec.Body.String())
	}
}

func mustParse(t *testing.T, s string) *qtree.Node {
	t.Helper()
	q, err := qparse.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
