// Command mediatord serves the bookstore mediator of Examples 1–2 over
// HTTP: it accepts constraint queries in the mediator vocabulary,
// translates them for each integrated source (Amazon and Clbooks),
// executes them against an in-memory catalog, filters false positives, and
// returns JSON.
//
// Requests flow through internal/serve: translations are memoized in a
// canonical LRU cache (permuted-but-equivalent queries share one entry,
// concurrent identical misses compute once), rule-matching results are
// shared across distinct queries through a bounded matchings cache
// (-matchcache), per-source execution fans out in parallel under a bounded
// worker pool with a per-source timeout, and atomic counters — including
// match-cache hits, misses, and evictions — are exported at /stats.
// With -stream, /query answers flow through the streaming per-shard pipeline
// (internal/stream): each source's data is split across -shards shards that
// emit tuples through bounded channels into a deterministic k-way merge, and
// qmap_stream_* metrics appear at /metrics (see docs/streaming.md).
// With -index, both execution paths answer via cost-based access paths —
// selectivity-ranked hash/range/prefix/token index probes with scan
// fallback, byte-identical answers — and qmap_index_* metrics appear at
// /metrics (see docs/performance.md §6).
// With -breaker / -hedge / -retries, per-source fault absorption
// (internal/resilience) guards the fan-out: circuit breakers fail a tripped
// source's requests fast with a typed error, hedged requests duplicate
// stragglers after the source's latency-quantile delay, and transient
// faults are retried with jittered backoff; qmap_breaker_*, qmap_hedge_*,
// and qmap_retry_* metrics appear at /metrics (see docs/resilience.md).
// -admission puts a TinyLFU frequency sketch in front of the translation
// and matchings caches so scan traffic cannot wash out the hot set.
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight queries.
//
// Endpoints:
//
//	GET /translate?q=<query>      per-source translations and the filter
//	GET /query?q=<query>          mediated answers from the catalog
//	GET /trace?q=<query>          span tree of a fresh (uncached) translation
//	GET /sources                  the integrated sources and their rules
//	GET /stats                    serving-layer counters (cache, latency)
//	GET /metrics                  Prometheus text exposition of all counters
//	GET /debug/pprof/             runtime profiling (net/http/pprof)
//	GET /healthz                  liveness
//
// Example:
//
//	mediatord -addr :8080 &
//	curl 'localhost:8080/translate?q=[ln = "Clancy"] and [fn = "Tom"]'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/sources"
)

type server struct {
	med     *mediator.Mediator
	svc     *serve.Server
	catalog *engine.Relation
	reg     *obs.Registry
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nBooks := flag.Int("books", 500, "synthetic catalog size")
	seed := flag.Int64("seed", 1999, "catalog generator seed")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "translation cache capacity (entries)")
	matchCache := flag.Int("matchcache", 0, "shared matchings-cache capacity (0 = default, negative disables)")
	plan := flag.Int("plan", 0, "shared translation-plan capacity (0 = default, negative disables)")
	workers := flag.Int("workers", 0, "max concurrent source executions (0 = 2×GOMAXPROCS)")
	srcTimeout := flag.Duration("source-timeout", 10*time.Second, "per-source execution timeout (0 = none)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	streaming := flag.Bool("stream", false, "answer /query on the streaming per-shard pipeline (bounded memory, qmap_stream_* metrics)")
	shards := flag.Int("shards", 4, "shards per source on the streaming path (with -stream)")
	index := flag.Bool("index", false, "build cost-based access paths per source and answer via selectivity-ranked index probes (qmap_index_* metrics)")
	breaker := flag.Bool("breaker", false, "per-source circuit breakers: a tripped source fails fast with a typed error (qmap_breaker_* metrics)")
	hedge := flag.Bool("hedge", false, "hedge straggling source executions after the tracked latency-quantile delay (qmap_hedge_* metrics)")
	retries := flag.Int("retries", 0, "total executions allowed per source request on transient faults, first included (<= 1 disables; qmap_retry_total)")
	admission := flag.Bool("admission", false, "TinyLFU admission in front of the translation and matchings caches (qmap_admission_rejected_total)")
	flag.Parse()

	s := newServer(*seed, *nBooks, serve.Config{
		Cache: serve.CacheConfig{
			Size:           *cacheSize,
			MatchCacheSize: *matchCache,
			PlanSize:       *plan,
			Admission:      *admission,
		},
		Streaming: serve.StreamConfig{
			Enabled: *streaming,
			Shards:  *shards,
		},
		Resilience: serve.ResilienceConfig{
			Breaker: *breaker,
			Hedge:   *hedge,
			Retries: *retries,
		},
		Workers:       *workers,
		SourceTimeout: *srcTimeout,
		Index:         *index,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	mode := ""
	if *streaming {
		mode = fmt.Sprintf(" (streaming, %d shards/source)", *shards)
	}
	if *index {
		mode += " (indexed access paths)"
	}
	if *breaker || *hedge || *retries > 1 {
		mode += " (resilient fan-out)"
	}
	log.Printf("mediatord: serving %d-book catalog on %s%s", s.catalog.Len(), *addr, mode)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		log.Printf("mediatord: signal received, draining in-flight queries (max %s)", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("mediatord: forced shutdown: %v", err)
		}
		st := s.svc.Stats()
		log.Printf("mediatord: served %d requests (%.0f%% cache hits), bye",
			st.Requests, 100*st.HitRate())
	}
}

func newServer(seed int64, nBooks int, cfg serve.Config) *server {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(seed, nBooks))
	// Equality indexes accelerate the directly-indexable translations;
	// overridden operators (the structured author match) fall back to scans.
	med.Indexes = map[string]engine.IndexSet{
		"amazon":  engine.BuildIndexes(catalog, "publisher", "isbn", "subject"),
		"clbooks": engine.BuildIndexes(catalog, "publisher"),
	}
	data := map[string]*engine.Relation{
		"amazon":  catalog,
		"clbooks": catalog,
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	obs.RegisterGoRuntime(reg)
	med.Metrics = obs.NewTranslationMetrics(reg)
	return &server{
		med:     med,
		svc:     serve.New(med, data, cfg),
		catalog: catalog,
		reg:     reg,
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /translate", s.handleTranslate)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /sources", s.handleSources)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type translationJSON struct {
	Query   string          `json:"query"`
	Sources []sourceMapJSON `json:"sources"`
	Filter  string          `json:"filter"`
}

type sourceMapJSON struct {
	Source     string      `json:"source"`
	Translated string      `json:"translated"`
	Tree       *qtree.Node `json:"tree"`
	Residue    string      `json:"residue"`
}

func (s *server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	q, err := qparse.Parse(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tr, err := s.svc.Translate(r.Context(), q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := translationJSON{Query: q.String(), Filter: tr.Filter.String()}
	for _, st := range tr.Sources {
		out.Sources = append(out.Sources, sourceMapJSON{
			Source:     st.Source.Name,
			Translated: st.Query.String(),
			Tree:       st.Query,
			Residue:    st.Residue.String(),
		})
	}
	writeJSON(w, out)
}

type queryResultJSON struct {
	Query       string              `json:"query"`
	Answers     []map[string]string `json:"answers"`
	AnswerCount int                 `json:"answer_count"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := qparse.Parse(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	result, err := s.svc.Query(r.Context(), q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := queryResultJSON{Query: q.String(), AnswerCount: result.Len()}
	for _, t := range result.Tuples {
		row := make(map[string]string)
		for _, attr := range []string{"ti", "author", "publisher", "id-no"} {
			if v, ok := t[attr]; ok {
				row[attr] = v.String()
			}
		}
		out.Answers = append(out.Answers, row)
	}
	writeJSON(w, out)
}

type sourceInfoJSON struct {
	Name  string `json:"name"`
	Rules string `json:"rules"`
}

func (s *server) handleSources(w http.ResponseWriter, r *http.Request) {
	var out []sourceInfoJSON
	for _, src := range s.med.Sources {
		out = append(out, sourceInfoJSON{Name: src.Name, Rules: rules.FormatSpec(src.Spec)})
	}
	writeJSON(w, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.svc.Stats())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		log.Printf("mediatord: writing metrics: %v", err)
	}
}

// handleTrace translates q afresh — bypassing the cache, since a cached
// translation performs no algorithm work to observe — under a tracer and
// returns the resulting span tree as JSON.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q, err := qparse.Parse(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(r.Context(), tracer)
	if _, err := s.med.TranslateContext(ctx, q); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, tracer.Root())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("mediatord: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
