// Command mediatord serves the bookstore mediator of Examples 1–2 over
// HTTP: it accepts constraint queries in the mediator vocabulary,
// translates them for each integrated source (Amazon and Clbooks),
// executes them against an in-memory catalog, filters false positives, and
// returns JSON.
//
// Endpoints:
//
//	GET /translate?q=<query>      per-source translations and the filter
//	GET /query?q=<query>          mediated answers from the catalog
//	GET /sources                  the integrated sources and their rules
//	GET /healthz                  liveness
//
// Example:
//
//	mediatord -addr :8080 &
//	curl 'localhost:8080/translate?q=[ln = "Clancy"] and [fn = "Tom"]'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/sources"
)

type server struct {
	med     *mediator.Mediator
	catalog *engine.Relation
	data    map[string]*engine.Relation
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nBooks := flag.Int("books", 500, "synthetic catalog size")
	seed := flag.Int64("seed", 1999, "catalog generator seed")
	flag.Parse()

	s := newServer(*seed, *nBooks)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /translate", s.handleTranslate)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /sources", s.handleSources)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	log.Printf("mediatord: serving %d-book catalog on %s", s.catalog.Len(), *addr)
	log.Fatal(srv.ListenAndServe())
}

func newServer(seed int64, nBooks int) *server {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(seed, nBooks))
	// Equality indexes accelerate the directly-indexable translations;
	// overridden operators (the structured author match) fall back to scans.
	med.Indexes = map[string]engine.IndexSet{
		"amazon":  engine.BuildIndexes(catalog, "publisher", "isbn", "subject"),
		"clbooks": engine.BuildIndexes(catalog, "publisher"),
	}
	return &server{
		med:     med,
		catalog: catalog,
		data: map[string]*engine.Relation{
			"amazon":  catalog,
			"clbooks": catalog,
		},
	}
}

type translationJSON struct {
	Query   string          `json:"query"`
	Sources []sourceMapJSON `json:"sources"`
	Filter  string          `json:"filter"`
}

type sourceMapJSON struct {
	Source     string      `json:"source"`
	Translated string      `json:"translated"`
	Tree       *qtree.Node `json:"tree"`
	Residue    string      `json:"residue"`
}

func (s *server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	q, err := qparse.Parse(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tr, err := s.med.Translate(q)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := translationJSON{Query: q.String(), Filter: tr.Filter.String()}
	for _, st := range tr.Sources {
		out.Sources = append(out.Sources, sourceMapJSON{
			Source:     st.Source.Name,
			Translated: st.Query.String(),
			Tree:       st.Query,
			Residue:    st.Residue.String(),
		})
	}
	writeJSON(w, out)
}

type queryResultJSON struct {
	Query       string              `json:"query"`
	Answers     []map[string]string `json:"answers"`
	AnswerCount int                 `json:"answer_count"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := qparse.Parse(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	result, _, err := s.med.ExecuteUnion(q, s.data)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := queryResultJSON{Query: q.String(), AnswerCount: result.Len()}
	for _, t := range result.Tuples {
		row := make(map[string]string)
		for _, attr := range []string{"ti", "author", "publisher", "id-no"} {
			if v, ok := t[attr]; ok {
				row[attr] = v.String()
			}
		}
		out.Answers = append(out.Answers, row)
	}
	writeJSON(w, out)
}

type sourceInfoJSON struct {
	Name  string `json:"name"`
	Rules string `json:"rules"`
}

func (s *server) handleSources(w http.ResponseWriter, r *http.Request) {
	var out []sourceInfoJSON
	for _, src := range s.med.Sources {
		out = append(out, sourceInfoJSON{Name: src.Name, Rules: rules.FormatSpec(src.Spec)})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("mediatord: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
