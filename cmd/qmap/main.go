// Command qmap translates a constraint query for a target source from the
// command line.
//
// Usage:
//
//	qmap -spec amazon -alg tdqm '[ln = "Clancy"] and [fn = "Tom"]'
//	qmap -spec t1 -tree '[fac.ln = pub.ln] and [fac.fn = pub.fn]'
//	qmap -spec amazon -explain '...'   # print the derivation
//	qmap -spec amazon -trace '...'     # print the span tree as JSON
//	qmap -spec amazon -rules           # print the spec's rules and exit
//	qmap -rulefile my.rules -lint      # check a user rule file
//	qmap -rulefile hop1.rules -compose hop2.rules '...'
//	                                   # precompose a two-hop chain offline
//	                                   # and translate through the composition
//	qmap -rulefile hop1.rules -compose hop2.rules
//	                                   # composition report only: lint,
//	                                   # dead-rule detection, let counts
//
// Built-in specifications: amazon, clbooks, t1, t2, map, cars, metric (the
// paper's scenarios plus the Section 1 motivating examples). A rule file
// written in the DSL (see docs/dsl.md) can be layered on top of the
// built-in function registry with -rulefile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/sources"
)

func main() {
	var (
		specName = flag.String("spec", "amazon", "built-in spec: amazon, clbooks, t1, t2, map, cars, metric")
		ruleFile = flag.String("rulefile", "", "load a rule-DSL file instead of a built-in spec (functions resolve against the base registry; capability checks are skipped)")
		alg      = flag.String("alg", core.AlgTDQM, "algorithm: scm, dnf, tdqm, cnf (dependency-blind baseline)")
		showTree = flag.Bool("tree", false, "print original and translated query trees")
		showF    = flag.Bool("filter", true, "print the filter query F")
		stats    = flag.Bool("stats", false, "print translation statistics")
		simplify = flag.Bool("simplify", false, "apply Boolean absorption simplification to the output")
		explain  = flag.Bool("explain", false, "print the translation derivation (rule firings, partitions, rewrites)")
		traceOut = flag.Bool("trace", false, "print the translation span tree as JSON (see docs/observability.md)")
		listRule = flag.Bool("rules", false, "print the mapping specification and exit")
		lint     = flag.Bool("lint", false, "lint the mapping specification and exit (non-zero on errors)")
		compose  = flag.String("compose", "", "compose the spec with a second hop (built-in name or rule file) and translate through the composition; prints a composition report")
	)
	flag.Parse()

	var src *sources.Source
	var err error
	if *ruleFile != "" {
		src, err = fileSource(*ruleFile)
	} else {
		src, err = builtinSource(*specName)
	}
	if err != nil {
		fail(err)
	}
	composed := false
	if *compose != "" {
		second, err := loadSource(*compose)
		if err != nil {
			fail(err)
		}
		comp, info, err := rules.ComposeDetail(src.Spec, second.Spec)
		if err != nil {
			fail(fmt.Errorf("composing %s with %s: %w", src.Spec.Name, second.Spec.Name, err))
		}
		fmt.Printf("composed:        %s (%d rules, %d exact)\n", comp.Name, len(comp.Rules), info.ExactRules)
		fmt.Printf("rules composed:  %d\n", info.RulesComposed)
		fmt.Printf("conversion lets: %d (+%d constant lets)\n", info.ConversionLets, info.ConstLets)
		for _, p := range rules.LintComposition(src.Spec, second.Spec) {
			fmt.Println(p)
		}
		for _, r := range second.Spec.Rules {
			if info.FiredB[r.Name] == 0 {
				fmt.Printf("dead rule: %s never fired while composing (unreachable for %s's emissions)\n",
					r.Name, src.Spec.Name)
			}
		}
		src = &sources.Source{Name: src.Name + "+" + second.Name, Spec: comp}
		composed = true
	}
	if *listRule {
		fmt.Print(rules.FormatSpec(src.Spec))
		return
	}
	if *lint {
		ps := rules.Lint(src.Spec)
		if len(ps) == 0 {
			fmt.Println("no findings")
			return
		}
		for _, p := range ps {
			fmt.Println(p)
		}
		for _, p := range ps {
			if p.Level == rules.LintError {
				os.Exit(1)
			}
		}
		return
	}

	queryText := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(queryText) == "" {
		if composed {
			return // the composition report alone is a valid invocation
		}
		fail(fmt.Errorf("no query given; try: qmap -spec amazon '[ln = \"Clancy\"]'"))
	}
	q, err := qparse.Parse(queryText)
	if err != nil {
		fail(err)
	}

	var opts []core.Option
	var trace *core.Trace
	if *explain {
		trace = &core.Trace{}
		opts = append(opts, core.WithTrace(trace))
	}
	var tracer *obs.Tracer
	if *traceOut {
		tracer = obs.NewTracer()
		opts = append(opts, core.WithTracer(tracer))
	}
	tr := core.NewTranslator(src.Spec, opts...)
	mapped, filter, err := tr.TranslateWithFilter(q, *alg)
	if err != nil {
		fail(err)
	}
	if *simplify {
		mapped = qtree.Simplify(mapped)
	}

	fmt.Printf("target:     %s\n", src.Name)
	fmt.Printf("algorithm:  %s\n", *alg)
	fmt.Printf("original:   %s\n", q)
	fmt.Printf("translated: %s\n", mapped)
	if *showF {
		fmt.Printf("filter F:   %s\n", filter)
	}
	if *ruleFile == "" && !composed {
		if err := src.Target().Expressible(mapped); err != nil {
			fmt.Printf("WARNING: %v\n", err)
		}
	}
	if *explain {
		fmt.Println("\nderivation:")
		fmt.Print(trace.String())
	}
	if *traceOut {
		js, err := json.MarshalIndent(tracer.Root(), "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println("\ntrace:")
		fmt.Println(string(js))
	}
	if *showTree {
		fmt.Println("\noriginal tree:")
		fmt.Print(q.TreeString())
		fmt.Println("translated tree:")
		fmt.Print(mapped.TreeString())
	}
	if *stats {
		s := tr.Stats
		fmt.Println("\nstatistics:")
		fmt.Printf("  SCM calls:            %d\n", s.SCMCalls)
		fmt.Printf("  rule-match passes:    %d\n", s.MatchRuns)
		fmt.Printf("  matchings found:      %d\n", s.MatchingsFound)
		fmt.Printf("  PSafe calls:          %d\n", s.PSafeCalls)
		fmt.Printf("  product terms:        %d\n", s.ProductTerms)
		fmt.Printf("  disjunctivizations:   %d\n", s.Disjunctivizations)
		fmt.Printf("  DNF disjuncts:        %d\n", s.DNFDisjuncts)
		fmt.Printf("  original size:        %d nodes\n", q.Size())
		fmt.Printf("  translated size:      %d nodes\n", mapped.Size())
	}
}

func builtinSource(name string) (*sources.Source, error) {
	switch name {
	case "amazon":
		return sources.NewAmazon(), nil
	case "clbooks":
		return sources.NewClbooks(), nil
	case "t1":
		return sources.NewT1(), nil
	case "t2":
		return sources.NewT2(), nil
	case "map":
		return sources.NewMapSource(), nil
	case "cars":
		return sources.NewCars(), nil
	case "metric":
		return sources.NewMetric(), nil
	default:
		return nil, fmt.Errorf("unknown spec %q (want amazon, clbooks, t1, t2, map, cars, metric)", name)
	}
}

// loadSource resolves a built-in spec name, falling back to a rule file
// path.
func loadSource(nameOrPath string) (*sources.Source, error) {
	if src, err := builtinSource(nameOrPath); err == nil {
		return src, nil
	}
	return fileSource(nameOrPath)
}

// fileSource loads a user rule file against the base registry. The target's
// capabilities are unknown, so a permissive target is used and
// expressibility checking is skipped.
func fileSource(path string) (*sources.Source, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rs, err := rules.ParseRules(string(text))
	if err != nil {
		return nil, err
	}
	spec, err := rules.NewSpec(path, rules.NewTarget("custom"), sources.BaseRegistry(), rs...)
	if err != nil {
		return nil, err
	}
	return &sources.Source{Name: "custom", Spec: spec}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qmap:", err)
	os.Exit(1)
}
