// BENCH_matching.json: the machine-readable perf trajectory for the
// matching engine. `qbench -bench-json BENCH_matching.json` re-measures the
// compiled-dispatch and dependency-degree benchmarks and rewrites the file;
// `qbench -bench-check BENCH_matching.json` verifies the recorded shape —
// flag set and benchmark list — still matches this binary, so CI fails when
// qbench's flags or the benchmark suite change without regenerating the
// file (timings are recorded, not checked: they vary by machine).

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/sources"
	"repro/internal/values"
	"repro/internal/workload"
)

// benchSchema versions the file layout.
const benchSchema = "qbench-bench/v1"

type benchFile struct {
	Schema string `json:"schema"`
	// QbenchFlags records the sorted flag names of the qbench binary that
	// wrote the file; -bench-check fails when the current binary differs.
	QbenchFlags []string     `json:"qbench_flags"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name string `json:"name"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AttemptsPerOp counts rules probed for matchings per operation.
	AttemptsPerOp float64 `json:"attempts_per_op,omitempty"`
	// TermsPerOp counts safety-check product terms per operation.
	TermsPerOp float64 `json:"terms_per_op,omitempty"`
	// HitRatePct is the shared matchings-cache hit rate over the whole
	// measurement, for the cache benchmarks.
	HitRatePct float64 `json:"hit_rate_pct,omitempty"`
	// PeakInFlight is the streaming pipeline's peak in-flight tuple count
	// over the measurement, for the stream/peak benchmarks — the empirical
	// side of the shards × (buffer+2) memory bound.
	PeakInFlight float64 `json:"peak_in_flight,omitempty"`
	// ScannedTuples is the number of tuples evaluated per operation, for the
	// scan/* and indexed-stream benchmarks — the evidence that index probes
	// touch candidates instead of the universe.
	ScannedTuples float64 `json:"scanned_tuples,omitempty"`
	// P99NsPerOp is the 99th-percentile per-request wall time for the
	// tail-latency benchmarks (hedge/tail/*) — the quantity hedged source
	// requests exist to improve, recorded so the trajectory file witnesses
	// the tail collapsing when hedging is on.
	P99NsPerOp float64 `json:"p99_ns_per_op,omitempty"`
	// HedgesWonPct is the fraction of requests won by a hedged attempt over
	// the measurement, for the hedge/tail/on row.
	HedgesWonPct float64 `json:"hedges_won_pct,omitempty"`
}

// registeredFlagNames enumerates the qbench flag set, sorted.
func registeredFlagNames() []string {
	fs := flag.NewFlagSet("qbench", flag.ContinueOnError)
	registerFlags(fs)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	return names
}

// timeOp measures fn with a doubling loop until the sample exceeds 50ms,
// returning ns/op.
func timeOp(fn func()) float64 {
	fn() // warm up (lazy compilation, memo-free first pass)
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 50*time.Millisecond || iters >= 1<<20 {
			return math.Round(float64(elapsed.Nanoseconds()) / float64(iters))
		}
		iters *= 2
	}
}

// wideMatchSpec builds one single-pattern rule per attribute a0..a{r-1}, the
// many-rules regime where compiled dispatch pays off (mirrors the
// BenchmarkMatchingsCompiled fixture).
func wideMatchSpec(r int) *rules.Spec {
	rs := make([]*rules.Rule, 0, r)
	caps := make([]rules.Capability, 0, r)
	for i := 0; i < r; i++ {
		text := fmt.Sprintf(`
rule R%d {
  match [a%d = V];
  where Value(V);
  emit exact [t%d = V];
}`, i, i, i)
		rs = append(rs, rules.MustParseRules(text)...)
		caps = append(caps, rules.Capability{Attr: fmt.Sprintf("t%d", i), Op: qtree.OpEq})
	}
	return rules.MustSpec(fmt.Sprintf("K_wide%d", r), rules.NewTarget("wide", caps...),
		rules.NewRegistry(), rs...)
}

func wideMatchQuery(r int) []*qtree.Constraint {
	cs := make([]*qtree.Constraint, 0, 8)
	for i := 0; i < 8; i++ {
		cs = append(cs, qtree.Sel(qtree.A(fmt.Sprintf("a%d", i*r/8)), qtree.OpEq,
			values.String(fmt.Sprintf("v%d", i))))
	}
	return cs
}

// runBenchSuite measures the fixed benchmark list. The names are stable:
// -bench-check compares them against the recorded file.
func runBenchSuite() []benchEntry {
	var out []benchEntry

	// Compiled vs uncompiled matching dispatch on wide specs.
	for _, r := range []int{32, 128} {
		s := wideMatchSpec(r)
		cs := wideMatchQuery(r)
		out = append(out, benchEntry{
			Name: fmt.Sprintf("matchings/uncompiled/R=%d", r),
			NsPerOp: timeOp(func() {
				if _, err := s.Matchings(cs); err != nil {
					panic(err)
				}
			}),
			AttemptsPerOp: float64(r),
		})
		c := s.Compiled()
		var probed int
		out = append(out, benchEntry{
			Name: fmt.Sprintf("matchings/compiled/R=%d", r),
			NsPerOp: timeOp(func() {
				var err error
				if _, probed, err = c.MatchingsCounted(cs); err != nil {
					panic(err)
				}
			}),
			AttemptsPerOp: float64(probed),
		})
	}

	// Dependency-degree sweep: fixed e, growing k (Sections 4.4, 8). The
	// paper's claim is cost near-flat in k at fixed e; attempts/op and
	// terms/op make that observable.
	const n = 4
	for _, variant := range []struct {
		name     string
		compiled bool
	}{{"tdqm", true}, {"tdqm-uncompiled", false}} {
		for _, e := range []int{0, 2} {
			for _, k := range []int{2, 4, 8} {
				s, q := workload.DependencyConjunction(n, k, e)
				var opts []core.Option
				if !variant.compiled {
					opts = append(opts, core.WithCompiled(false), core.WithMemo(false))
				}
				tr := core.NewTranslator(s.Spec, opts...)
				ops := 0
				ns := timeOp(func() {
					ops++
					if _, err := tr.TDQM(q); err != nil {
						panic(err)
					}
				})
				out = append(out, benchEntry{
					Name:          fmt.Sprintf("sweep/%s/e=%d/k=%d", variant.name, e, k),
					NsPerOp:       ns,
					AttemptsPerOp: float64(tr.Stats.RuleAttempts) / float64(ops),
					TermsPerOp:    float64(tr.Stats.ProductTerms) / float64(ops),
				})
			}
		}
	}

	// Warm translation-plan sweep: the same dependency-degree grid with a
	// shared plan attached. timeOp's warm-up call populates the plan, so the
	// measured loop replays precomputed fragments by query shape;
	// hit_rate_pct witnesses the replay. attempts/op and terms/op stay equal
	// to the plan-free rows — hits compensate Stats exactly.
	for _, e := range []int{0, 2} {
		for _, k := range []int{2, 4, 8} {
			s, q := workload.DependencyConjunction(n, k, e)
			pl := core.NewPlan(0)
			tr := core.NewTranslator(s.Spec, core.WithPlan(pl))
			ops := 0
			ns := timeOp(func() {
				ops++
				if _, err := tr.TDQM(q); err != nil {
					panic(err)
				}
			})
			out = append(out, benchEntry{
				Name:          fmt.Sprintf("plan/tdqm/e=%d/k=%d", e, k),
				NsPerOp:       ns,
				AttemptsPerOp: float64(tr.Stats.RuleAttempts) / float64(ops),
				TermsPerOp:    float64(tr.Stats.ProductTerms) / float64(ops),
				HitRatePct:    math.Round(1000*pl.Stats().HitRate()) / 10,
			})
		}
	}

	out = append(out, runServeCacheBench()...)
	out = append(out, runBatchBench()...)
	out = append(out, runStreamBench()...)
	out = append(out, runScanBench()...)
	out = append(out, runComposeBench()...)
	out = append(out, runHedgeBench()...)
	out = append(out, runAdmissionBench()...)
	return out
}

// runHedgeBench measures the per-request latency tail against a source pair
// whose executions suffer a deterministic-seeded 5% chance of a multi-
// millisecond benign delay — the transiently-slow-replica regime hedging is
// built for. The off/on pair shares the fault plan; the on row launches a
// duplicate execution after the source's tracked latency-quantile delay and
// takes the first completion. ns/op is the mean, p99_ns_per_op the nearest-
// rank 99th percentile over the sample — the recorded evidence of the p99
// hedge win.
func runHedgeBench() []benchEntry {
	ctx := context.Background()
	q := streamBenchQuery()
	const reqs = 400
	var out []benchEntry
	for _, variant := range []struct {
		name  string
		hedge bool
	}{{"off", false}, {"on", true}} {
		inj := engine.NewInjector(7, engine.FaultPlan{
			DelayProb: 0.05,
			Delay:     8 * time.Millisecond,
		})
		srv := bookstoreStack(200, serve.Config{
			Cache:      serve.CacheConfig{Size: 16},
			Resilience: serve.ResilienceConfig{Hedge: variant.hedge},
			Executor: func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
				if err := inj.Apply(ctx, source); err != nil {
					return nil, err
				}
				return serve.DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
			},
		})
		if _, err := srv.Query(ctx, q); err != nil { // warm the translation cache
			panic(err)
		}
		lats := make([]time.Duration, reqs)
		var total time.Duration
		for i := range lats {
			t0 := time.Now()
			if _, err := srv.Query(ctx, q); err != nil {
				panic(err)
			}
			lats[i] = time.Since(t0)
			total += lats[i]
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		entry := benchEntry{
			Name:       "hedge/tail/" + variant.name,
			NsPerOp:    math.Round(float64(total.Nanoseconds()) / reqs),
			P99NsPerOp: float64(lats[reqs*99/100].Nanoseconds()),
		}
		if variant.hedge {
			entry.HedgesWonPct = math.Round(1000*float64(srv.Stats().HedgesWon)/reqs) / 10
		}
		out = append(out, entry)
	}
	return out
}

// runAdmissionBench measures the translation cache under a scan-polluted
// rotation: every operation translates one query from a 32-entry hot set
// (fitting the 32-entry cache exactly) and one from a 2048-query scan pool
// that recycles far too slowly to deserve caching. Plain LRU lets every scan
// insert evict a hot entry; TinyLFU admission refuses inserts whose
// estimated frequency does not beat the victim's, so the hot set survives —
// hit_rate_pct records the difference.
func runAdmissionBench() []benchEntry {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	hot := benchQueriesSeed(s, 32, 1999)
	scans := benchQueriesSeed(s, 2048, 2024)
	ctx := context.Background()
	var out []benchEntry
	for _, variant := range []struct {
		name  string
		admit bool
	}{{"lru", false}, {"tinylfu", true}} {
		med := mediator.New(&sources.Source{Name: "w1", Spec: s.Spec, Eval: s.Eval})
		srv := serve.New(med, nil, serve.Config{
			Cache: serve.CacheConfig{
				Size:           32,
				MatchCacheSize: -1,
				PlanSize:       -1,
				Admission:      variant.admit,
			},
		})
		i := 0
		entry := benchEntry{
			Name: "admission/" + variant.name + "/scanmix",
			NsPerOp: timeOp(func() {
				if _, err := srv.Translate(ctx, hot[i%len(hot)]); err != nil {
					panic(err)
				}
				if _, err := srv.Translate(ctx, scans[i%len(scans)]); err != nil {
					panic(err)
				}
				i++
			}),
		}
		entry.HitRatePct = math.Round(1000*srv.Stats().HitRate()) / 10
		out = append(out, entry)
	}
	return out
}

// runScanBench compares the engine's full-scan selection against the
// cost-based access path on a 4k-tuple, ~0.5%-selectivity workload — one row
// pair per probe kind (hash equality, sorted-array range, inverted-token
// contains). scanned_tuples records how many tuples each operation actually
// evaluated: the universe for full scans, probe candidates for indexed runs.
func runScanBench() []benchEntry {
	const n = 4000
	rel := workload.AccessRelation(n)
	ev := engine.NewEvaluator()
	acc := engine.BuildAccess(rel)
	ctx := context.Background()
	var out []benchEntry
	for _, variant := range []struct {
		name string
		q    *qtree.Node
	}{
		{"eq", qtree.Leaf(qtree.Sel(qtree.A("cat"), qtree.OpEq, values.Int(7)))},
		{"range", qtree.Leaf(qtree.Sel(qtree.A("price"), qtree.OpLt, values.Int(50)))},
		{"contains", qtree.Leaf(qtree.Sel(qtree.A("desc"), qtree.OpContains, values.String("xenon")))},
	} {
		q := variant.q
		out = append(out, benchEntry{
			Name: "scan/full/" + variant.name,
			NsPerOp: timeOp(func() {
				if _, err := rel.Select(q, ev); err != nil {
					panic(err)
				}
			}),
			ScannedTuples: n,
		})
		before := acc.Stats().Scanned
		ops := 0
		entry := benchEntry{
			Name: "scan/indexed/" + variant.name,
			NsPerOp: timeOp(func() {
				ops++
				if _, err := rel.SelectAccess(ctx, q, ev, acc); err != nil {
					panic(err)
				}
			}),
		}
		entry.ScannedTuples = math.Round(float64(acc.Stats().Scanned-before) / float64(ops))
		out = append(out, entry)
	}
	return out
}

// runComposeBench measures the spec-algebra payoff on the dependency-degree
// grid: a second mapping hop is layered over each scenario's target
// vocabulary, and the same query is translated sequentially through both
// hops (the chain-debug reference) and through the offline-composed
// single-hop spec. Both paths use fresh translators per op, so the rows
// isolate per-request translation work — the one-time Compose cost is paid
// outside the timed loop, which is the deployment model.
func runComposeBench() []benchEntry {
	ctx := context.Background()
	var out []benchEntry
	for _, e := range []int{0, 2} {
		for _, k := range []int{2, 8} {
			s, q := workload.DependencyConjunction(4, k, e)
			ch := workload.NewChain(s, rand.New(rand.NewSource(7)))
			chain, err := mediator.Chain(s.Spec, ch.Spec2)
			if err != nil {
				panic(err)
			}
			var seqStats core.Stats
			seqOps := 0
			out = append(out, benchEntry{
				Name: fmt.Sprintf("compose/sequential/e=%d/k=%d", e, k),
				NsPerOp: timeOp(func() {
					seqOps++
					_, st, err := chain.SequentialTranslate(ctx, q, core.AlgTDQM)
					if err != nil {
						panic(err)
					}
					seqStats.Add(st)
				}),
				AttemptsPerOp: float64(seqStats.RuleAttempts) / float64(seqOps),
			})
			var compStats core.Stats
			compOps := 0
			out = append(out, benchEntry{
				Name: fmt.Sprintf("compose/composed/e=%d/k=%d", e, k),
				NsPerOp: timeOp(func() {
					compOps++
					tr := core.NewTranslator(chain.Composed)
					if _, err := tr.TDQM(q); err != nil {
						panic(err)
					}
					compStats.Add(tr.Stats)
				}),
				AttemptsPerOp: float64(compStats.RuleAttempts) / float64(compOps),
			})
		}
	}
	return out
}

// bookstoreStack builds the Amazon+Clbooks union stack over a generated
// catalog — the fixture the streaming benchmarks execute against.
func bookstoreStack(nBooks int, cfg serve.Config) *serve.Server {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(5, nBooks))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	return serve.New(med, data, cfg)
}

// streamBenchQuery selects a year's worth of books — a result that grows
// linearly with the catalog, which is what makes the peak-in-flight
// benchmarks meaningful.
func streamBenchQuery() *qtree.Node {
	return qtree.Or(
		qtree.Leaf(qtree.Sel(qtree.A("pyear"), qtree.OpEq, values.Int(1997))),
		qtree.Leaf(qtree.Sel(qtree.A("pyear"), qtree.OpEq, values.Int(1996))),
	)
}

// runStreamBench measures the streaming execution path: latency against the
// materialized baseline at shards 1 and 8, and peak in-flight tuples across
// growing catalogs at fixed shards × buffer — recorded so the trajectory
// file witnesses that per-request memory does not scale with result size.
func runStreamBench() []benchEntry {
	ctx := context.Background()
	q := streamBenchQuery()
	var out []benchEntry

	const benchBooks = 4000
	for _, variant := range []struct {
		name string
		cfg  serve.Config
	}{
		{"stream/union/materialized", serve.Config{CacheSize: 16}},
		{"stream/union/shards=1", serve.Config{CacheSize: 16, Stream: true, Shards: 1}},
		{"stream/union/shards=8", serve.Config{CacheSize: 16, Stream: true, Shards: 8}},
		{"stream/union/indexed/shards=1", serve.Config{CacheSize: 16, Stream: true, Shards: 1, Index: true}},
		{"stream/union/indexed/shards=8", serve.Config{CacheSize: 16, Stream: true, Shards: 8, Index: true}},
	} {
		srv := bookstoreStack(benchBooks, variant.cfg)
		ops := 0
		entry := benchEntry{
			Name: variant.name,
			NsPerOp: timeOp(func() {
				ops++
				if _, err := srv.Query(ctx, q); err != nil {
					panic(err)
				}
			}),
		}
		if variant.cfg.Index {
			entry.ScannedTuples = math.Round(float64(srv.Stats().IndexScanned) / float64(ops))
		}
		out = append(out, entry)
	}

	const shards, buffer = 4, 8
	for _, tuples := range []int{1000, 8000} {
		srv := bookstoreStack(tuples, serve.Config{
			CacheSize: 16, Stream: true, Shards: shards, StreamBuffer: buffer,
		})
		entry := benchEntry{
			Name: fmt.Sprintf("stream/peak/tuples=%d", tuples),
			NsPerOp: timeOp(func() {
				if _, err := srv.Query(ctx, q); err != nil {
					panic(err)
				}
			}),
		}
		entry.PeakInFlight = float64(srv.Stats().StreamPeakInFlight)
		out = append(out, entry)
	}
	return out
}

// benchQueries is the fixed query rotation the cache and batch benchmarks
// translate: deterministic-seeded random trees over the standard synthetic
// scenario.
func benchQueries(s *workload.Scenario, n int) []*qtree.Node {
	return benchQueriesSeed(s, n, 1999)
}

// benchQueriesSeed is benchQueries with an explicit generator seed, so two
// rotations over the same scenario can be made disjoint (the admission
// benchmark's hot set vs scan pool).
func benchQueriesSeed(s *workload.Scenario, n int, seed int64) []*qtree.Node {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.4}
	qs := make([]*qtree.Node, n)
	for i := range qs {
		qs[i] = s.RandomQuery(rng, cfg)
	}
	return qs
}

// runServeCacheBench measures a serve.Server translating a rotation of
// distinct queries with the shared matchings cache off and warm. The
// translation cache is held at one entry so every request re-translates —
// isolating the cross-request matching reuse the shared cache provides.
func runServeCacheBench() []benchEntry {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	qs := benchQueries(s, 32)
	ctx := context.Background()
	var out []benchEntry
	for _, variant := range []struct {
		name string
		size int // MatchCacheSize: negative disables
	}{{"off", -1}, {"warm", 0}} {
		med := mediator.New(&sources.Source{Name: "w1", Spec: s.Spec, Eval: s.Eval})
		srv := serve.New(med, nil, serve.Config{CacheSize: 1, MatchCacheSize: variant.size})
		i := 0
		entry := benchEntry{
			Name: "serve/sharedmatchcache/" + variant.name,
			NsPerOp: timeOp(func() {
				if _, err := srv.Translate(ctx, qs[i%len(qs)]); err != nil {
					panic(err)
				}
				i++
			}),
		}
		if mc := srv.MatchCache(); mc != nil {
			entry.HitRatePct = math.Round(1000*mc.Stats().HitRate()) / 10
		}
		out = append(out, entry)
	}
	return out
}

// runBatchBench compares per-query translation on fresh translators (the
// cold path) against TranslateBatch over one shared-state translator. Both
// entries record ns per query, not ns per batch.
func runBatchBench() []benchEntry {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	qs := benchQueries(s, 32)
	ctx := context.Background()
	n := float64(len(qs))
	var out []benchEntry

	out = append(out, benchEntry{
		Name: "batch/loop",
		NsPerOp: math.Round(timeOp(func() {
			for _, q := range qs {
				tr := core.NewTranslator(s.Spec)
				if _, err := tr.Do(ctx, q, core.AlgTDQM); err != nil {
					panic(err)
				}
			}
		}) / n),
	})

	mc := core.NewMatchCache(0)
	tr := core.NewTranslator(s.Spec, core.WithMatchCache(mc))
	out = append(out, benchEntry{
		Name: "batch/translatebatch",
		NsPerOp: math.Round(timeOp(func() {
			for _, r := range tr.TranslateBatch(ctx, qs, core.AlgTDQM) {
				if r.Err != nil {
					panic(r.Err)
				}
			}
		}) / n),
		HitRatePct: math.Round(1000*mc.Stats().HitRate()) / 10,
	})
	return out
}

// benchNames is the expected benchmark list, derived without measuring.
func benchNames() []string {
	var names []string
	for _, r := range []int{32, 128} {
		names = append(names,
			fmt.Sprintf("matchings/uncompiled/R=%d", r),
			fmt.Sprintf("matchings/compiled/R=%d", r))
	}
	for _, v := range []string{"tdqm", "tdqm-uncompiled"} {
		for _, e := range []int{0, 2} {
			for _, k := range []int{2, 4, 8} {
				names = append(names, fmt.Sprintf("sweep/%s/e=%d/k=%d", v, e, k))
			}
		}
	}
	for _, e := range []int{0, 2} {
		for _, k := range []int{2, 4, 8} {
			names = append(names, fmt.Sprintf("plan/tdqm/e=%d/k=%d", e, k))
		}
	}
	names = append(names,
		"serve/sharedmatchcache/off",
		"serve/sharedmatchcache/warm",
		"batch/loop",
		"batch/translatebatch",
		"stream/union/materialized",
		"stream/union/shards=1",
		"stream/union/shards=8",
		"stream/union/indexed/shards=1",
		"stream/union/indexed/shards=8",
		"stream/peak/tuples=1000",
		"stream/peak/tuples=8000")
	for _, v := range []string{"eq", "range", "contains"} {
		names = append(names, "scan/full/"+v, "scan/indexed/"+v)
	}
	for _, e := range []int{0, 2} {
		for _, k := range []int{2, 8} {
			names = append(names,
				fmt.Sprintf("compose/sequential/e=%d/k=%d", e, k),
				fmt.Sprintf("compose/composed/e=%d/k=%d", e, k))
		}
	}
	names = append(names,
		"hedge/tail/off",
		"hedge/tail/on",
		"admission/lru/scanmix",
		"admission/tinylfu/scanmix")
	return names
}

// medianBenchRuns repeats the suite runs times and keeps, per benchmark, the
// entry with the median ns/op — one noisy scheduler hiccup can no longer
// distort the recorded trajectory. The suite's fixed order aligns entries
// positionally across runs.
func medianBenchRuns(runs int) []benchEntry {
	if runs < 1 {
		runs = 1
	}
	all := make([][]benchEntry, runs)
	for r := range all {
		all[r] = runBenchSuite()
	}
	out := make([]benchEntry, len(all[0]))
	for i := range out {
		samples := make([]benchEntry, 0, runs)
		for r := range all {
			if i < len(all[r]) {
				samples = append(samples, all[r][i])
			}
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a].NsPerOp < samples[b].NsPerOp })
		out[i] = samples[len(samples)/2]
	}
	return out
}

// writeBenchJSON runs the suite runs times and writes the per-benchmark
// medians to path.
func writeBenchJSON(path string, runs int) error {
	f := benchFile{
		Schema:      benchSchema,
		QbenchFlags: registeredFlagNames(),
		Benchmarks:  medianBenchRuns(runs),
	}
	js, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

// readBenchJSON loads and schema-checks one bench file.
func readBenchJSON(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w (regenerate with qbench -bench-json %s)", err, path)
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return nil, fmt.Errorf("%s has schema %q, this qbench writes %q (regenerate)", path, f.Schema, benchSchema)
	}
	return &f, nil
}

// compareBenchJSON is -bench-check's trend mode: it compares the timings in
// path against the baseline file, failing when any benchmark present in
// both slowed down by more than threshold (a fraction: 0.5 allows new ns/op
// up to 1.5× the baseline). Only intersecting names are compared, so the
// trend check keeps working across suite additions; speedups never fail.
func compareBenchJSON(path, against string, threshold float64) error {
	cur, err := readBenchJSON(path)
	if err != nil {
		return err
	}
	base, err := readBenchJSON(against)
	if err != nil {
		return err
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}
	var regressions []string
	compared := 0
	for _, b := range cur.Benchmarks {
		old, ok := baseNs[b.Name]
		if !ok || old <= 0 {
			continue
		}
		compared++
		if ratio := b.NsPerOp / old; ratio > 1+threshold {
			regressions = append(regressions,
				fmt.Sprintf("  %s: %.0f ns/op vs %.0f ns/op baseline (%.2fx > %.2fx allowed)",
					b.Name, b.NsPerOp, old, ratio, 1+threshold))
		}
	}
	if compared == 0 {
		return fmt.Errorf("%s and %s share no benchmark names — nothing to compare", path, against)
	}
	if len(regressions) > 0 {
		msg := fmt.Sprintf("%d of %d benchmarks regressed beyond the %.0f%% threshold vs %s:",
			len(regressions), compared, 100*threshold, against)
		for _, r := range regressions {
			msg += "\n" + r
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// checkBenchJSON verifies path's shape against the current binary.
func checkBenchJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w (regenerate with qbench -bench-json %s)", err, path)
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return fmt.Errorf("%s has schema %q, this qbench writes %q (regenerate)", path, f.Schema, benchSchema)
	}
	if got, want := fmt.Sprint(f.QbenchFlags), fmt.Sprint(registeredFlagNames()); got != want {
		return fmt.Errorf("%s is stale: recorded qbench flags %v, current binary has %v (regenerate with qbench -bench-json)",
			path, f.QbenchFlags, registeredFlagNames())
	}
	var recorded []string
	for _, b := range f.Benchmarks {
		recorded = append(recorded, b.Name)
	}
	if got, want := fmt.Sprint(recorded), fmt.Sprint(benchNames()); got != want {
		return fmt.Errorf("%s is stale: recorded benchmarks %v, suite is %v (regenerate with qbench -bench-json)",
			path, recorded, benchNames())
	}
	return nil
}
