// BENCH_matching.json: the machine-readable perf trajectory for the
// matching engine. `qbench -bench-json BENCH_matching.json` re-measures the
// compiled-dispatch and dependency-degree benchmarks and rewrites the file;
// `qbench -bench-check BENCH_matching.json` verifies the recorded shape —
// flag set and benchmark list — still matches this binary, so CI fails when
// qbench's flags or the benchmark suite change without regenerating the
// file (timings are recorded, not checked: they vary by machine).

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/qtree"
	"repro/internal/rules"
	"repro/internal/values"
	"repro/internal/workload"
)

// benchSchema versions the file layout.
const benchSchema = "qbench-bench/v1"

type benchFile struct {
	Schema string `json:"schema"`
	// QbenchFlags records the sorted flag names of the qbench binary that
	// wrote the file; -bench-check fails when the current binary differs.
	QbenchFlags []string     `json:"qbench_flags"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name string `json:"name"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AttemptsPerOp counts rules probed for matchings per operation.
	AttemptsPerOp float64 `json:"attempts_per_op,omitempty"`
	// TermsPerOp counts safety-check product terms per operation.
	TermsPerOp float64 `json:"terms_per_op,omitempty"`
}

// registeredFlagNames enumerates the qbench flag set, sorted.
func registeredFlagNames() []string {
	fs := flag.NewFlagSet("qbench", flag.ContinueOnError)
	registerFlags(fs)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	return names
}

// timeOp measures fn with a doubling loop until the sample exceeds 50ms,
// returning ns/op.
func timeOp(fn func()) float64 {
	fn() // warm up (lazy compilation, memo-free first pass)
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 50*time.Millisecond || iters >= 1<<20 {
			return math.Round(float64(elapsed.Nanoseconds()) / float64(iters))
		}
		iters *= 2
	}
}

// wideMatchSpec builds one single-pattern rule per attribute a0..a{r-1}, the
// many-rules regime where compiled dispatch pays off (mirrors the
// BenchmarkMatchingsCompiled fixture).
func wideMatchSpec(r int) *rules.Spec {
	rs := make([]*rules.Rule, 0, r)
	caps := make([]rules.Capability, 0, r)
	for i := 0; i < r; i++ {
		text := fmt.Sprintf(`
rule R%d {
  match [a%d = V];
  where Value(V);
  emit exact [t%d = V];
}`, i, i, i)
		rs = append(rs, rules.MustParseRules(text)...)
		caps = append(caps, rules.Capability{Attr: fmt.Sprintf("t%d", i), Op: qtree.OpEq})
	}
	return rules.MustSpec(fmt.Sprintf("K_wide%d", r), rules.NewTarget("wide", caps...),
		rules.NewRegistry(), rs...)
}

func wideMatchQuery(r int) []*qtree.Constraint {
	cs := make([]*qtree.Constraint, 0, 8)
	for i := 0; i < 8; i++ {
		cs = append(cs, qtree.Sel(qtree.A(fmt.Sprintf("a%d", i*r/8)), qtree.OpEq,
			values.String(fmt.Sprintf("v%d", i))))
	}
	return cs
}

// runBenchSuite measures the fixed benchmark list. The names are stable:
// -bench-check compares them against the recorded file.
func runBenchSuite() []benchEntry {
	var out []benchEntry

	// Compiled vs uncompiled matching dispatch on wide specs.
	for _, r := range []int{32, 128} {
		s := wideMatchSpec(r)
		cs := wideMatchQuery(r)
		out = append(out, benchEntry{
			Name: fmt.Sprintf("matchings/uncompiled/R=%d", r),
			NsPerOp: timeOp(func() {
				if _, err := s.Matchings(cs); err != nil {
					panic(err)
				}
			}),
			AttemptsPerOp: float64(r),
		})
		c := s.Compiled()
		var probed int
		out = append(out, benchEntry{
			Name: fmt.Sprintf("matchings/compiled/R=%d", r),
			NsPerOp: timeOp(func() {
				var err error
				if _, probed, err = c.MatchingsCounted(cs); err != nil {
					panic(err)
				}
			}),
			AttemptsPerOp: float64(probed),
		})
	}

	// Dependency-degree sweep: fixed e, growing k (Sections 4.4, 8). The
	// paper's claim is cost near-flat in k at fixed e; attempts/op and
	// terms/op make that observable.
	const n = 4
	for _, variant := range []struct {
		name     string
		compiled bool
	}{{"tdqm", true}, {"tdqm-uncompiled", false}} {
		for _, e := range []int{0, 2} {
			for _, k := range []int{2, 4, 8} {
				s, q := workload.DependencyConjunction(n, k, e)
				tr := core.NewTranslator(s.Spec)
				if !variant.compiled {
					tr.SetCompiled(false)
					tr.SetMemo(false)
				}
				ops := 0
				ns := timeOp(func() {
					ops++
					if _, err := tr.TDQM(q); err != nil {
						panic(err)
					}
				})
				out = append(out, benchEntry{
					Name:          fmt.Sprintf("sweep/%s/e=%d/k=%d", variant.name, e, k),
					NsPerOp:       ns,
					AttemptsPerOp: float64(tr.Stats.RuleAttempts) / float64(ops),
					TermsPerOp:    float64(tr.Stats.ProductTerms) / float64(ops),
				})
			}
		}
	}
	return out
}

// benchNames is the expected benchmark list, derived without measuring.
func benchNames() []string {
	var names []string
	for _, r := range []int{32, 128} {
		names = append(names,
			fmt.Sprintf("matchings/uncompiled/R=%d", r),
			fmt.Sprintf("matchings/compiled/R=%d", r))
	}
	for _, v := range []string{"tdqm", "tdqm-uncompiled"} {
		for _, e := range []int{0, 2} {
			for _, k := range []int{2, 4, 8} {
				names = append(names, fmt.Sprintf("sweep/%s/e=%d/k=%d", v, e, k))
			}
		}
	}
	return names
}

// writeBenchJSON runs the suite and writes path.
func writeBenchJSON(path string) error {
	f := benchFile{
		Schema:      benchSchema,
		QbenchFlags: registeredFlagNames(),
		Benchmarks:  runBenchSuite(),
	}
	js, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

// checkBenchJSON verifies path's shape against the current binary.
func checkBenchJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w (regenerate with qbench -bench-json %s)", err, path)
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return fmt.Errorf("%s has schema %q, this qbench writes %q (regenerate)", path, f.Schema, benchSchema)
	}
	if got, want := fmt.Sprint(f.QbenchFlags), fmt.Sprint(registeredFlagNames()); got != want {
		return fmt.Errorf("%s is stale: recorded qbench flags %v, current binary has %v (regenerate with qbench -bench-json)",
			path, f.QbenchFlags, registeredFlagNames())
	}
	var recorded []string
	for _, b := range f.Benchmarks {
		recorded = append(recorded, b.Name)
	}
	if got, want := fmt.Sprint(recorded), fmt.Sprint(benchNames()); got != want {
		return fmt.Errorf("%s is stale: recorded benchmarks %v, suite is %v (regenerate with qbench -bench-json)",
			path, recorded, benchNames())
	}
	return nil
}
