package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/serve"
	"repro/internal/sources"
	"repro/internal/workload"
)

// serveOptions configures the `-serve` workload mode.
type serveOptions struct {
	clients    int  // concurrent client goroutines
	requests   int  // total requests across all clients
	distinct   int  // distinct queries in the rotation (cache working set)
	cache      int  // translation-cache capacity
	tuples     int  // universe tuples per source shard
	metrics    bool // print the Prometheus exposition after the run
	par        int  // per-translation worker pool (mediator.Parallelism)
	batch      int  // translate in batches of this size instead of executing (0 = off)
	matchcache int  // shared matchings-cache capacity (0 = default, negative disables)
	plan       int  // shared translation-plan capacity (0 = default, negative disables)
	stream     bool // answer queries on the streaming per-shard pipeline
	shards     int  // shards per source on the streaming path
	index      bool // answer via cost-based access paths (index probes)
}

// runServe drives internal/serve with C concurrent clients over the
// synthetic workload generator and reports throughput and cache behavior.
// Two sources share the generated vocabulary but hold independent data
// shards, so every request fans out across both in parallel.
func runServe(opt serveOptions) {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	med := mediator.New(
		&sources.Source{Name: "w1", Spec: s.Spec, Eval: s.Eval},
		&sources.Source{Name: "w2", Spec: s.Spec, Eval: s.Eval},
	)
	med.Eval = s.Eval
	med.Parallelism = opt.par

	rng := rand.New(rand.NewSource(1999))
	data := map[string]*engine.Relation{}
	for _, name := range []string{"w1", "w2"} {
		rel := engine.NewRelation(name)
		for i := 0; i < opt.tuples; i++ {
			rel.Tuples = append(rel.Tuples, s.RandomTuple(rng))
		}
		data[name] = rel
	}

	// Shallower trees than the property-test default: depth-4 random
	// queries over a pair/triple-heavy scenario occasionally explode under
	// translation and would dominate the tail.
	cfg := workload.QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.4}
	queries := make([]*qtree.Node, opt.distinct)
	for i := range queries {
		queries[i] = s.RandomQuery(rng, cfg)
	}

	reg := obs.NewRegistry()
	med.Metrics = obs.NewTranslationMetrics(reg)
	srv := serve.New(med, data, serve.Config{
		CacheSize:      opt.cache,
		MatchCacheSize: opt.matchcache,
		PlanSize:       opt.plan,
		Metrics:        reg,
		Stream:         opt.stream,
		Shards:         opt.shards,
		Index:          opt.index,
	})
	ctx := context.Background()

	var served, answers, failed atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(7 + c)))
			n := opt.requests / opt.clients
			if c < opt.requests%opt.clients {
				n++
			}
			if opt.batch > 0 {
				for i := 0; i < n; i += opt.batch {
					size := opt.batch
					if size > n-i {
						size = n - i
					}
					qs := make([]*qtree.Node, size)
					for j := range qs {
						qs[j] = queries[crng.Intn(len(queries))]
					}
					for _, r := range srv.TranslateBatch(ctx, qs) {
						if r.Err != nil {
							failed.Add(1)
							continue
						}
						served.Add(1)
					}
				}
				return
			}
			for i := 0; i < n; i++ {
				rel, err := srv.Query(ctx, queries[crng.Intn(len(queries))])
				if err != nil {
					failed.Add(1)
					continue
				}
				served.Add(1)
				answers.Add(uint64(rel.Len()))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	mode := "executed queries"
	if opt.stream {
		mode = fmt.Sprintf("executed queries (streaming, %d shards/source)", opt.shards)
	}
	if opt.index {
		mode += " (indexed access paths)"
	}
	if opt.batch > 0 {
		mode = fmt.Sprintf("translate-only batches of %d", opt.batch)
	}
	fmt.Printf("serve workload: %d clients, %d distinct queries, %d tuples/source, %s\n\n",
		opt.clients, opt.distinct, opt.tuples, mode)
	rows := [][]string{
		{"requests served", fmt.Sprintf("%d", served.Load())},
		{"requests failed", fmt.Sprintf("%d", failed.Load())},
		{"answers returned", fmt.Sprintf("%d", answers.Load())},
		{"elapsed", elapsed.Round(time.Millisecond).String()},
		{"throughput", fmt.Sprintf("%.0f req/s", float64(served.Load())/elapsed.Seconds())},
		{"ns/query", fmt.Sprintf("%.0f", float64(elapsed.Nanoseconds())/float64(served.Load()))},
		{"cache hit rate", fmt.Sprintf("%.1f%%", 100*st.HitRate())},
		{"cache hits/misses/shared", fmt.Sprintf("%d/%d/%d", st.CacheHits, st.CacheMisses, st.CacheShared)},
		{"cache entries/evictions", fmt.Sprintf("%d/%d", st.CacheEntries, st.CacheEvictions)},
		{"source timeouts", fmt.Sprintf("%d", st.Timeouts)},
	}
	if opt.stream {
		rows = append(rows,
			[]string{"stream requests", fmt.Sprintf("%d", st.StreamRequests)},
			[]string{"stream tuples emitted", fmt.Sprintf("%d", st.StreamEmitted)},
			[]string{"stream peak in-flight", fmt.Sprintf("%d", st.StreamPeakInFlight)},
			[]string{"stream merge waits", fmt.Sprintf("%d", st.StreamMergeWaits)},
		)
	}
	if opt.index {
		rows = append(rows,
			[]string{"index probes", fmt.Sprintf("%d", st.IndexProbes)},
			[]string{"index fallbacks", fmt.Sprintf("%d", st.IndexFallbacks)},
			[]string{"index scanned tuples", fmt.Sprintf("%d", st.IndexScanned)},
		)
	}
	if mc := srv.MatchCache(); mc != nil {
		mcs := mc.Stats()
		rows = append(rows,
			[]string{"matchcache hit rate", fmt.Sprintf("%.1f%%", 100*mcs.HitRate())},
			[]string{"matchcache hits/misses", fmt.Sprintf("%d/%d", mcs.Hits, mcs.Misses)},
			[]string{"matchcache entries/evictions", fmt.Sprintf("%d/%d", mcs.Entries, mcs.Evictions)},
		)
	}
	if pl := srv.Plan(); pl != nil {
		pls := pl.Stats()
		rows = append(rows,
			[]string{"plan hit rate", fmt.Sprintf("%.1f%%", 100*pls.HitRate())},
			[]string{"plan hits/misses", fmt.Sprintf("%d/%d", pls.Hits, pls.Misses)},
			[]string{"plan entries/evictions", fmt.Sprintf("%d/%d", pls.Entries, pls.Evictions)},
		)
	}
	table([]string{"metric", "value"}, rows)

	fmt.Println("\nper-source latency (completed executions):")
	labels := st.LatencyLabels
	header := append([]string{"source", "executions"}, labels...)
	var srcRows [][]string
	for _, name := range sortedKeys(st.Sources) {
		sc := st.Sources[name]
		row := []string{name, fmt.Sprintf("%d", sc.Executions)}
		for _, n := range sc.LatencyBuckets {
			row = append(row, fmt.Sprintf("%d", n))
		}
		srcRows = append(srcRows, row)
	}
	table(header, srcRows)

	if opt.metrics {
		fmt.Println("\nmetrics exposition:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qbench: writing metrics: %v\n", err)
		}
	}
}
