package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/qtree"
	"repro/internal/serve"
	"repro/internal/sources"
	"repro/internal/workload"
)

// serveOptions configures the `-serve` workload mode.
type serveOptions struct {
	clients    int  // concurrent client goroutines
	requests   int  // total requests across all clients
	distinct   int  // distinct queries in the rotation (cache working set)
	cache      int  // translation-cache capacity
	tuples     int  // universe tuples per source shard
	metrics    bool // print the Prometheus exposition after the run
	par        int  // per-translation worker pool (mediator.Parallelism)
	batch      int  // translate in batches of this size instead of executing (0 = off)
	matchcache int  // shared matchings-cache capacity (0 = default, negative disables)
	plan       int  // shared translation-plan capacity (0 = default, negative disables)
	stream     bool // answer queries on the streaming per-shard pipeline
	shards     int  // shards per source on the streaming path
	index      bool // answer via cost-based access paths (index probes)

	// Drill mode: fixed-RPS open-loop load with latency-percentile SLO
	// reporting (see runDrill).
	rps      int           // target request rate (0 = closed-loop serve mode)
	slo      time.Duration // p99 latency SLO; 0 reports percentiles only
	breaker  bool          // per-source circuit breakers
	hedge    bool          // hedged source requests
	retries  int           // total executions per source request (<= 1 off)
	admit    bool          // TinyLFU cache admission
	taildel  time.Duration // injected tail delay upper bound (0 = off)
	tailprob float64       // probability of the injected tail delay
}

// runServe drives internal/serve with C concurrent clients over the
// synthetic workload generator and reports throughput and cache behavior.
// Two sources share the generated vocabulary but hold independent data
// shards, so every request fans out across both in parallel. With -rps the
// run switches to the open-loop drill mode: requests are paced at the fixed
// target rate, per-request latency is measured from the intended start time
// (so queueing delay counts), and the run fails when p99 exceeds -slo.
func runServe(opt serveOptions) error {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	med := mediator.New(
		&sources.Source{Name: "w1", Spec: s.Spec, Eval: s.Eval},
		&sources.Source{Name: "w2", Spec: s.Spec, Eval: s.Eval},
	)
	med.Eval = s.Eval
	med.Parallelism = opt.par

	rng := rand.New(rand.NewSource(1999))
	data := map[string]*engine.Relation{}
	for _, name := range []string{"w1", "w2"} {
		rel := engine.NewRelation(name)
		for i := 0; i < opt.tuples; i++ {
			rel.Tuples = append(rel.Tuples, s.RandomTuple(rng))
		}
		data[name] = rel
	}

	// Shallower trees than the property-test default: depth-4 random
	// queries over a pair/triple-heavy scenario occasionally explode under
	// translation and would dominate the tail.
	cfg := workload.QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.4}
	queries := make([]*qtree.Node, opt.distinct)
	for i := range queries {
		queries[i] = s.RandomQuery(rng, cfg)
	}

	reg := obs.NewRegistry()
	med.Metrics = obs.NewTranslationMetrics(reg)
	scfg := serve.Config{
		Cache: serve.CacheConfig{
			Size:           opt.cache,
			MatchCacheSize: opt.matchcache,
			PlanSize:       opt.plan,
			Admission:      opt.admit,
		},
		Streaming: serve.StreamConfig{
			Enabled: opt.stream,
			Shards:  opt.shards,
		},
		Resilience: serve.ResilienceConfig{
			Breaker: opt.breaker,
			Hedge:   opt.hedge,
			Retries: opt.retries,
		},
		Metrics: reg,
		Index:   opt.index,
	}
	if opt.taildel > 0 {
		inj := engine.NewInjector(1999, engine.FaultPlan{
			DelayProb: opt.tailprob,
			Delay:     opt.taildel,
		})
		scfg.Executor = func(ctx context.Context, source string, rel *engine.Relation, q *qtree.Node, ev *engine.Evaluator, ix engine.IndexSet, acc *engine.Access) (*engine.Relation, error) {
			if err := inj.Apply(ctx, source); err != nil {
				return nil, err
			}
			return serve.DefaultExecutor(ctx, source, rel, q, ev, ix, acc)
		}
		if opt.stream {
			scfg.Streaming.Hook = inj.ApplyShard
		}
	}
	srv := serve.New(med, data, scfg)
	ctx := context.Background()

	if opt.rps > 0 {
		return runDrill(ctx, opt, srv, queries, reg)
	}

	var served, answers, failed atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(7 + c)))
			n := opt.requests / opt.clients
			if c < opt.requests%opt.clients {
				n++
			}
			if opt.batch > 0 {
				for i := 0; i < n; i += opt.batch {
					size := opt.batch
					if size > n-i {
						size = n - i
					}
					qs := make([]*qtree.Node, size)
					for j := range qs {
						qs[j] = queries[crng.Intn(len(queries))]
					}
					for _, r := range srv.TranslateBatch(ctx, qs) {
						if r.Err != nil {
							failed.Add(1)
							continue
						}
						served.Add(1)
					}
				}
				return
			}
			for i := 0; i < n; i++ {
				rel, err := srv.Query(ctx, queries[crng.Intn(len(queries))])
				if err != nil {
					failed.Add(1)
					continue
				}
				served.Add(1)
				answers.Add(uint64(rel.Len()))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	mode := "executed queries"
	if opt.stream {
		mode = fmt.Sprintf("executed queries (streaming, %d shards/source)", opt.shards)
	}
	if opt.index {
		mode += " (indexed access paths)"
	}
	if opt.batch > 0 {
		mode = fmt.Sprintf("translate-only batches of %d", opt.batch)
	}
	fmt.Printf("serve workload: %d clients, %d distinct queries, %d tuples/source, %s\n\n",
		opt.clients, opt.distinct, opt.tuples, mode)
	rows := [][]string{
		{"requests served", fmt.Sprintf("%d", served.Load())},
		{"requests failed", fmt.Sprintf("%d", failed.Load())},
		{"answers returned", fmt.Sprintf("%d", answers.Load())},
		{"elapsed", elapsed.Round(time.Millisecond).String()},
		{"throughput", fmt.Sprintf("%.0f req/s", float64(served.Load())/elapsed.Seconds())},
		{"ns/query", fmt.Sprintf("%.0f", float64(elapsed.Nanoseconds())/float64(served.Load()))},
		{"cache hit rate", fmt.Sprintf("%.1f%%", 100*st.HitRate())},
		{"cache hits/misses/shared", fmt.Sprintf("%d/%d/%d", st.CacheHits, st.CacheMisses, st.CacheShared)},
		{"cache entries/evictions", fmt.Sprintf("%d/%d", st.CacheEntries, st.CacheEvictions)},
		{"source timeouts", fmt.Sprintf("%d", st.Timeouts)},
	}
	if opt.stream {
		rows = append(rows,
			[]string{"stream requests", fmt.Sprintf("%d", st.StreamRequests)},
			[]string{"stream tuples emitted", fmt.Sprintf("%d", st.StreamEmitted)},
			[]string{"stream peak in-flight", fmt.Sprintf("%d", st.StreamPeakInFlight)},
			[]string{"stream merge waits", fmt.Sprintf("%d", st.StreamMergeWaits)},
		)
	}
	if opt.index {
		rows = append(rows,
			[]string{"index probes", fmt.Sprintf("%d", st.IndexProbes)},
			[]string{"index fallbacks", fmt.Sprintf("%d", st.IndexFallbacks)},
			[]string{"index scanned tuples", fmt.Sprintf("%d", st.IndexScanned)},
		)
	}
	rows = append(rows, resilienceRows(opt, st)...)
	if mc := srv.MatchCache(); mc != nil {
		mcs := mc.Stats()
		rows = append(rows,
			[]string{"matchcache hit rate", fmt.Sprintf("%.1f%%", 100*mcs.HitRate())},
			[]string{"matchcache hits/misses", fmt.Sprintf("%d/%d", mcs.Hits, mcs.Misses)},
			[]string{"matchcache entries/evictions", fmt.Sprintf("%d/%d", mcs.Entries, mcs.Evictions)},
		)
	}
	if pl := srv.Plan(); pl != nil {
		pls := pl.Stats()
		rows = append(rows,
			[]string{"plan hit rate", fmt.Sprintf("%.1f%%", 100*pls.HitRate())},
			[]string{"plan hits/misses", fmt.Sprintf("%d/%d", pls.Hits, pls.Misses)},
			[]string{"plan entries/evictions", fmt.Sprintf("%d/%d", pls.Entries, pls.Evictions)},
		)
	}
	table([]string{"metric", "value"}, rows)

	fmt.Println("\nper-source latency (completed executions):")
	labels := st.LatencyLabels
	header := append([]string{"source", "executions"}, labels...)
	var srcRows [][]string
	for _, name := range sortedKeys(st.Sources) {
		sc := st.Sources[name]
		row := []string{name, fmt.Sprintf("%d", sc.Executions)}
		for _, n := range sc.LatencyBuckets {
			row = append(row, fmt.Sprintf("%d", n))
		}
		srcRows = append(srcRows, row)
	}
	table(header, srcRows)

	if opt.metrics {
		fmt.Println("\nmetrics exposition:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qbench: writing metrics: %v\n", err)
		}
	}
	return nil
}

// resilienceRows renders the resilience and admission counters when any of
// the corresponding mechanisms is enabled.
func resilienceRows(opt serveOptions, st serve.Stats) [][]string {
	var rows [][]string
	if opt.breaker || opt.hedge || opt.retries > 1 {
		rows = append(rows,
			[]string{"breaker trips", fmt.Sprintf("%d", st.BreakerTrips)},
			[]string{"hedges launched/won", fmt.Sprintf("%d/%d", st.HedgesLaunched, st.HedgesWon)},
			[]string{"retries", fmt.Sprintf("%d", st.Retries)},
		)
	}
	if opt.admit {
		rows = append(rows,
			[]string{"admission rejected", fmt.Sprintf("%d", st.AdmissionRejected)})
	}
	return rows
}

// runDrill is the fixed-RPS drill: an open-loop load generator launches one
// goroutine per request at its scheduled start time, so a server falling
// behind accumulates measured queueing delay instead of silently slowing the
// offered load (the closed-loop coordinated-omission trap). Latencies are
// measured from the intended start; the run fails when p99 exceeds the SLO.
func runDrill(ctx context.Context, opt serveOptions, srv *serve.Server, queries []*qtree.Node, reg *obs.Registry) error {
	interval := time.Second / time.Duration(opt.rps)
	lats := make([]time.Duration, opt.requests)
	var failed atomic.Uint64
	rng := rand.New(rand.NewSource(7))
	picks := make([]*qtree.Node, opt.requests)
	for i := range picks {
		picks[i] = queries[rng.Intn(len(queries))]
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opt.requests; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			if _, err := srv.Query(ctx, picks[i]); err != nil {
				failed.Add(1)
			}
			lats[i] = time.Since(scheduled)
		}(i, scheduled)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	p50, p95, p99 := quantileDur(sorted, 0.50), quantileDur(sorted, 0.95), quantileDur(sorted, 0.99)

	st := srv.Stats()
	fmt.Printf("drill: %d requests at %d req/s target (achieved %.0f req/s)\n\n",
		opt.requests, opt.rps, float64(opt.requests)/elapsed.Seconds())
	rows := [][]string{
		{"requests failed", fmt.Sprintf("%d", failed.Load())},
		{"elapsed", elapsed.Round(time.Millisecond).String()},
		{"p50 latency", p50.Round(time.Microsecond).String()},
		{"p95 latency", p95.Round(time.Microsecond).String()},
		{"p99 latency", p99.Round(time.Microsecond).String()},
		{"cache hit rate", fmt.Sprintf("%.1f%%", 100*st.HitRate())},
		{"source timeouts", fmt.Sprintf("%d", st.Timeouts)},
	}
	rows = append(rows, resilienceRows(opt, st)...)
	table([]string{"metric", "value"}, rows)

	if opt.metrics {
		fmt.Println("\nmetrics exposition:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qbench: writing metrics: %v\n", err)
		}
	}
	if opt.slo > 0 {
		if p99 > opt.slo {
			return fmt.Errorf("drill SLO violated: p99 %s > %s", p99.Round(time.Microsecond), opt.slo)
		}
		fmt.Printf("\ndrill SLO met: p99 %s <= %s\n", p99.Round(time.Microsecond), opt.slo)
	}
	return nil
}

// quantileDur reads the q-quantile from an ascending latency sample by the
// nearest-rank method.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
