package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r) //nolint:errcheck
		done <- buf.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestGoldenExperimentsReproduce pins the deterministic experiment outputs:
// the figures and worked examples must keep printing the paper's results.
func TestGoldenExperimentsReproduce(t *testing.T) {
	cases := []struct {
		name string
		run  func()
		want []string
	}{
		{"E2", runE2, []string{
			`[author = "Smith"]`,
			`[ti-word contains java(^)jdk]`,
			`[pdate during May/97]`,
			`[subject = "programming"]`,
			`[isbn = "081815181Y"]`,
		}},
		{"E3", runE3, []string{
			`[fac.aubib.name = pub.paper.au]`,
			`[fac.prof.dept = 230]`,
			`F`,
			`data(^)mining`,
		}},
		{"E5", runE5, []string{
			"eps",
			"{[pyear = 1997]}",
			"{[pmonth = 5]} v {[pmonth = 6]}",
		}},
		{"E6", runE6, []string{
			"(f1 f2)(f3 f4)  2", // 2 cross-matchings
			"true",              // separable
			"false",             // inseparable
		}},
		{"E7", runE7, []string{
			"{{0,1}, {2}}",
			"{{0,1,2}}",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := capture(t, c.run)
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("experiment %s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}

func TestExperimentRegistryUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("experiment %s incomplete", e.id)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"} {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}
