// Command qbench regenerates the reproduction's experiment tables — one per
// figure, worked example, or analytic claim in the paper (see DESIGN.md's
// experiment index and EXPERIMENTS.md for the recorded results).
//
// Usage:
//
//	qbench             # run every experiment
//	qbench -exp E10    # run one experiment
//	qbench -list       # list experiments
//	qbench -serve -clients 16 -requests 20000
//	                   # drive the concurrent serving layer (internal/serve)
//	                   # over the synthetic workload; reports throughput,
//	                   # cache hit rate, and per-source latency histograms.
//	                   # -batch N submits requests through TranslateBatch in
//	                   # chunks of N; -matchcache N sizes the shared
//	                   # matchings cache and -plan N the shared translation
//	                   # plan (negative disables either)
//	qbench -serve -rps 500 -slo 20ms -hedge -taildelay 10ms
//	                   # drill mode: open-loop load paced at a fixed RPS with
//	                   # p50/p95/p99 latency reporting; exits 1 when p99
//	                   # exceeds -slo. -breaker/-hedge/-retries/-admission
//	                   # enable the resilience layer and -taildelay/-tailprob
//	                   # inject a benign latency tail to drill against
//	qbench -bench-json BENCH_matching.json
//	                   # re-measure the matching-engine benchmarks and rewrite
//	                   # the perf trajectory file; -bench-check verifies its
//	                   # shape against the binary without re-measuring
//	qbench -bench-check NEW.json -bench-against BENCH_matching.json
//	                   # trend mode: additionally compare ns/op name-by-name
//	                   # and fail on slowdowns beyond -bench-threshold
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func()
}

var experiments = []experiment{
	{"E1", "Examples 1-2: dependency-aware bookstore translation and relaxation", runE1},
	{"E2", "Figure 2: simple-conjunction mappings for Amazon", runE2},
	{"E3", "Example 3: multi-view multi-source mapping with filter", runE3},
	{"E4", "Example 6 / Figure 7: TDQM vs DNF on Q_book", runE4},
	{"E5", "Examples 10-11: EDNF annotations and safety of Q_book", runE5},
	{"E6", "Example 8 / Figure 9: redundant cross-matchings at the map source", runE6},
	{"E7", "Examples 13-14 / Figure 12: PSafe partitions", runE7},
	{"E8", "Section 4.4: SCM runtime linear in N and R", runE8},
	{"E9", "Section 8: TDQM vs DNF cost without dependencies", runE9},
	{"E10", "Section 8: compactness — TDQM vs DNF output size", runE10},
	{"E11", "Section 8: safety-check cost vs dependency degree e", runE11},
	{"E12", "Definition 1 / Eq. 3: empirical subsumption and filtering", runE12},
	{"E13", "Ablations: suppression, PSafe partitioning, EDNF", runE13},
	{"E14", "Extension: filtering work saved by per-branch filters", runE14},
	{"E15", "Section 3 comparisons: dependency-blind and non-relaxing baselines", runE15},
}

// options holds every qbench flag; registerFlags declares them all on one
// FlagSet so tests can enumerate the registered flags.
type options struct {
	exp  string
	list bool

	serveMode serveOptions
	serve     bool

	benchJSON      string
	benchCheck     string
	benchAgainst   string
	benchThreshold float64
	benchRuns      int
}

// registerFlags declares qbench's flags on fs and returns the bound options.
func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.exp, "exp", "", "experiment id to run (default: all)")
	fs.BoolVar(&o.list, "list", false, "list experiments and exit")

	fs.BoolVar(&o.serve, "serve", false, "run the concurrent serve workload instead of experiments")
	fs.IntVar(&o.serveMode.clients, "clients", 8, "serve mode: concurrent client goroutines")
	fs.IntVar(&o.serveMode.requests, "requests", 10000, "serve mode: total requests")
	fs.IntVar(&o.serveMode.distinct, "distinct", 64, "serve mode: distinct queries in rotation")
	fs.IntVar(&o.serveMode.cache, "cache", 256, "serve mode: translation cache capacity")
	fs.IntVar(&o.serveMode.tuples, "tuples", 500, "serve mode: universe tuples per source shard")
	fs.BoolVar(&o.serveMode.metrics, "metrics", false, "serve mode: print the Prometheus metrics exposition after the run")
	fs.IntVar(&o.serveMode.par, "par", 0, "serve mode: per-translation worker pool size (0 = sequential)")
	fs.IntVar(&o.serveMode.batch, "batch", 0, "serve mode: translate in batches of this size instead of executing queries (0 = off)")
	fs.IntVar(&o.serveMode.matchcache, "matchcache", 0, "serve mode: shared matchings-cache capacity (0 = default, negative disables)")
	fs.IntVar(&o.serveMode.plan, "plan", 0, "serve mode: shared translation-plan capacity (0 = default, negative disables)")
	fs.BoolVar(&o.serveMode.stream, "stream", false, "serve mode: answer queries on the streaming per-shard pipeline")
	fs.IntVar(&o.serveMode.shards, "shards", 4, "serve mode: shards per source on the streaming path")
	fs.BoolVar(&o.serveMode.index, "index", false, "serve mode: answer via cost-based access paths (selectivity-ranked index probes)")
	fs.IntVar(&o.serveMode.rps, "rps", 0, "serve mode: drill — pace requests at this fixed rate and report p50/p95/p99 latency (0 = closed loop)")
	fs.DurationVar(&o.serveMode.slo, "slo", 0, "drill mode: fail (exit 1) when p99 latency exceeds this (0 = report only)")
	fs.BoolVar(&o.serveMode.breaker, "breaker", false, "serve mode: per-source circuit breakers (tripped sources fail fast with a typed error)")
	fs.BoolVar(&o.serveMode.hedge, "hedge", false, "serve mode: hedge straggling source executions after the latency-quantile delay")
	fs.IntVar(&o.serveMode.retries, "retries", 0, "serve mode: total executions allowed per source request on transient faults (<= 1 disables)")
	fs.BoolVar(&o.serveMode.admit, "admission", false, "serve mode: TinyLFU admission in front of the translation and matchings caches")
	fs.DurationVar(&o.serveMode.taildel, "taildelay", 0, "serve mode: inject a benign per-source delay up to this bound with probability -tailprob (0 = off)")
	fs.Float64Var(&o.serveMode.tailprob, "tailprob", 0.05, "serve mode: probability of the injected -taildelay per source execution")

	fs.StringVar(&o.benchJSON, "bench-json", "", "run the matching benchmark suite and write results to this file")
	fs.StringVar(&o.benchCheck, "bench-check", "", "verify a -bench-json file's flag and benchmark sets match this binary")
	fs.StringVar(&o.benchAgainst, "bench-against", "", "bench-check trend mode: compare the -bench-check file's timings against this baseline file")
	fs.Float64Var(&o.benchThreshold, "bench-threshold", 0.5, "bench-check trend mode: allowed fractional slowdown per benchmark (0.5 = 1.5x)")
	fs.IntVar(&o.benchRuns, "bench-runs", 3, "bench-json mode: measurement repetitions per benchmark; the median is recorded")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "Usage of qbench:")
		fs.PrintDefaults()
	}
	return o
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()

	if o.benchCheck != "" {
		if err := checkBenchJSON(o.benchCheck); err != nil {
			fmt.Fprintf(os.Stderr, "qbench: %v\n", err)
			os.Exit(1)
		}
		if o.benchAgainst != "" {
			if err := compareBenchJSON(o.benchCheck, o.benchAgainst, o.benchThreshold); err != nil {
				fmt.Fprintf(os.Stderr, "qbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s is up to date; no regressions beyond %.0f%% vs %s\n",
				o.benchCheck, 100*o.benchThreshold, o.benchAgainst)
			return
		}
		fmt.Printf("%s is up to date\n", o.benchCheck)
		return
	}
	if o.benchJSON != "" {
		if err := writeBenchJSON(o.benchJSON, o.benchRuns); err != nil {
			fmt.Fprintf(os.Stderr, "qbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", o.benchJSON)
		return
	}
	if o.serve {
		if err := runServe(o.serveMode); err != nil {
			fmt.Fprintf(os.Stderr, "qbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if o.list {
		for _, e := range experiments {
			fmt.Printf("%-5s %s\n", e.id, e.title)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if o.exp != "" && !strings.EqualFold(o.exp, e.id) {
			continue
		}
		ran = true
		fmt.Printf("=== %s: %s ===\n\n", e.id, e.title)
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "qbench: unknown experiment %q (use -list)\n", o.exp)
		os.Exit(1)
	}
}

// table prints an aligned text table.
func table(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(header)
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
