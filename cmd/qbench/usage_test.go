package main

import (
	"bytes"
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// docFlagLine matches a flag line of the recorded usage block
// ("  -name type" or "  -name").
var docFlagLine = regexp.MustCompile(`^  -([a-z][a-z-]*)`)

// TestUsageMatchesRecordedOutput keeps docs/qbench_output.txt honest: the
// flag list in its "$ qbench -h" header must match the flags qbench actually
// registers, in both directions. Regenerate the doc after changing flags:
//
//	go build -o qbench ./cmd/qbench
//	{ echo '$ qbench -h'; ./qbench -h 2>&1; echo; ./qbench; } > docs/qbench_output.txt
func TestUsageMatchesRecordedOutput(t *testing.T) {
	fs := flag.NewFlagSet("qbench", flag.ContinueOnError)
	registerFlags(fs)
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })

	raw, err := os.ReadFile("../../docs/qbench_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	if len(lines) == 0 || lines[0] != "$ qbench -h" {
		t.Fatalf("doc does not start with the usage transcript; first line %q", lines[0])
	}
	if lines[1] != "Usage of qbench:" {
		t.Fatalf("line 2 = %q, want %q", lines[1], "Usage of qbench:")
	}

	documented := map[string]bool{}
	for _, line := range lines[2:] {
		if line == "" {
			break // the usage block ends at the first blank line
		}
		if m := docFlagLine.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no flag lines found in the doc's usage block")
	}

	for name := range registered {
		if !documented[name] {
			t.Errorf("flag -%s registered but missing from docs/qbench_output.txt (regenerate the doc)", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/qbench_output.txt documents -%s, which qbench no longer registers", name)
		}
	}
}

// TestUsageOutput pins the rendered usage header so the doc's transcript
// stays reproducible with a plain `qbench -h`.
func TestUsageOutput(t *testing.T) {
	fs := flag.NewFlagSet("qbench", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	registerFlags(fs)
	fs.Usage()
	out := buf.String()
	if !strings.HasPrefix(out, "Usage of qbench:\n") {
		t.Errorf("usage starts %q, want %q", out[:min(len(out), 40)], "Usage of qbench:")
	}
	if !strings.Contains(out, "-metrics") || !strings.Contains(out, "-serve") {
		t.Errorf("usage lacks expected flags:\n%s", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
