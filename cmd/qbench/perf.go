package main

// The performance experiments E8–E12 measure the analytic claims of
// Sections 4.4 and 8 on synthetic workloads (internal/workload) using
// testing.Benchmark for timing.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// bench runs f under testing.Benchmark and returns ns/op.
func bench(f func()) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return float64(r.NsPerOp())
}

func runE8() {
	fmt.Println("SCM runtime vs N (constraints), fixed spec (192 rules over 256")
	fmt.Println("attributes, so every constraint names a distinct attribute):")
	s := workload.New(workload.Config{Indep: 128, Pairs: 64})
	rng := rand.New(rand.NewSource(8))
	var rows [][]string
	var prev float64
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
		q := s.SimpleConjunction(rng, n)
		cs := q.SimpleConjuncts()
		tr := core.NewTranslator(s.Spec)
		ns := bench(func() {
			_, err := tr.SCM(cs)
			must(err)
		})
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("%.2fx", ns/prev)
		}
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprintf("%.0f", ns), growth})
		prev = ns
	}
	table([]string{"N", "ns/op", "growth"}, rows)
	fmt.Println("\npaper: linear in N — growth should track the 2x step in N.")

	fmt.Println("\nSCM runtime vs R (rules), fixed query (N = 24):")
	rows = nil
	prev = 0
	for _, groups := range []int{4, 8, 16, 32, 64} {
		s := workload.New(workload.Config{Indep: groups, Pairs: groups / 2})
		q := s.SimpleConjunction(rand.New(rand.NewSource(9)), 24)
		cs := q.SimpleConjuncts()
		tr := core.NewTranslator(s.Spec)
		r := len(s.Spec.Rules)
		ns := bench(func() {
			_, err := tr.SCM(cs)
			must(err)
		})
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("%.2fx", ns/prev)
		}
		rows = append(rows, []string{fmt.Sprint(r), fmt.Sprintf("%.0f", ns), growth})
		prev = ns
	}
	table([]string{"R", "ns/op", "growth"}, rows)
	fmt.Println("\npaper: linear in R.")
}

func runE9() {
	fmt.Println("TDQM vs DNF on queries with NO constraint dependencies")
	fmt.Println("(conjunction of n/2 two-way disjunctions; DNF has 2^(n/2) disjuncts):")
	var rows [][]string
	for _, n := range []int{4, 8, 12, 16, 20, 24} {
		s, q := workload.IndependentTree(n)
		trT := core.NewTranslator(s.Spec)
		nsT := bench(func() {
			_, err := trT.TDQM(q)
			must(err)
		})
		trD := core.NewTranslator(s.Spec)
		nsD := bench(func() {
			_, err := trD.DNFMap(q)
			must(err)
		})
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", nsT),
			fmt.Sprintf("%.0f", nsD),
			fmt.Sprintf("%.1fx", nsD/nsT),
		})
	}
	table([]string{"n", "TDQM ns/op", "DNF ns/op", "DNF/TDQM"}, rows)
	fmt.Println("\npaper: TDQM pays virtually no extra cost when no dependencies exist;")
	fmt.Println("DNF conversion is exponential, so the ratio should grow with n.")
}

func runE10() {
	fmt.Println("Output compactness (parse-tree nodes) on the worst-case family")
	fmt.Println("Q = ∧_{i=1..k} (a_{2i} ∨ a_{2i+1}), all constraints independent:")
	var rows [][]string
	for _, k := range []int{2, 4, 6, 8, 10, 12} {
		s, q := workload.WorstCaseCompactness(k)
		tr := core.NewTranslator(s.Spec)
		viaTDQM, err := tr.TDQM(q)
		must(err)
		viaDNF, err := tr.DNFMap(q)
		must(err)
		ratio := float64(viaDNF.Size()) / float64(viaTDQM.Size())
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(q.Size()),
			fmt.Sprint(viaTDQM.Size()),
			fmt.Sprint(viaDNF.Size()),
			fmt.Sprintf("%.1f", ratio),
			fmt.Sprintf("%.0f", math.Pow(2, float64(k))),
		})
	}
	table([]string{"k", "input size", "TDQM size", "DNF size", "DNF/TDQM", "2^k"}, rows)
	fmt.Println("\npaper: the compactness ratio can reach 2^n — TDQM preserves the input")
	fmt.Println("structure while DNF enumerates 2^k minterms.")
}

func runE11() {
	const n, k = 4, 3
	fmt.Printf("Safety-check cost vs dependency degree e (n=%d conjuncts, k=%d constraints each):\n", n, k)
	var rows [][]string
	for e := 0; e <= 3; e++ {
		s, q := workload.DependencyConjunction(n, k, e)
		tr := core.NewTranslator(s.Spec)
		ns := bench(func() {
			tr.ResetStats()
			_, err := tr.PSafe(q.Kids)
			must(err)
		})
		terms := tr.Stats.ProductTerms
		fullDNF := math.Pow(float64(k), float64(n)) // k^n product terms for brute force
		rows = append(rows, []string{
			fmt.Sprint(e),
			fmt.Sprint(terms),
			fmt.Sprintf("%.0f", fullDNF),
			fmt.Sprintf("%.0f", ns),
		})
	}
	table([]string{"e", "EDNF product terms", "full-DNF terms", "PSafe ns/op"}, rows)
	fmt.Println("\npaper: EDNF cost grows with the dependency degree e (≈2^{ne}); with e = 0")
	fmt.Println("the check is virtually free, while brute-force DNF always pays k^n.")
}

func runE12() {
	s := workload.New(workload.Config{Indep: 4, Pairs: 2, InexactPairs: 2, Triples: 1})
	rng := rand.New(rand.NewSource(12))
	cfg := workload.DefaultQueryConfig()

	var qTotal, sTotal, fpBefore, fpAfter int
	queries := 0
	for i := 0; i < 150; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		mapped, filter, err := tr.TranslateWithFilter(q, core.AlgTDQM)
		must(err)
		queries++
		for j := 0; j < 200; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			must(err)
			inS, err := s.Eval.EvalQuery(mapped, tup)
			must(err)
			inF, err := s.Eval.EvalQuery(filter, tup)
			must(err)
			if inQ {
				qTotal++
				if !inS {
					panic("subsumption violated")
				}
			}
			if inS {
				sTotal++
				if !inQ {
					fpBefore++
					if inF {
						fpAfter++
					}
				}
			}
		}
	}
	table([]string{"metric", "value"}, [][]string{
		{"random queries", fmt.Sprint(queries)},
		{"tuples satisfying Q", fmt.Sprint(qTotal)},
		{"tuples satisfying S(Q)", fmt.Sprint(sTotal)},
		{"false positives before filter", fmt.Sprint(fpBefore)},
		{"false positives after filter", fmt.Sprint(fpAfter)},
		{"subsumption violations", "0 (would panic)"},
	})
	fmt.Println("\npaper: S(Q) subsumes Q always (Definition 1); the filter restores")
	fmt.Println("exactness (Eq. 3) — false positives after filtering must be 0.")
}
