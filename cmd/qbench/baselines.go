package main

// Experiment E15: quantify the Section 3 comparisons. The paper argues
// other systems (a) ignore constraint dependencies (Garlic-style CNF
// processing) and (b) drop unsupported constraints instead of relaxing
// them. Both alternatives still produce correct subsuming translations —
// the cost is selectivity: the source returns more tuples that the
// mediator must filter.

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/qtree"
	"repro/internal/workload"
)

func runE15() {
	s := workload.New(workload.Config{Indep: 3, Pairs: 2, InexactPairs: 2, Triples: 1})
	exactOnly := core.WithoutRelaxations(s.Spec)
	rng := rand.New(rand.NewSource(15))
	cfg := workload.DefaultQueryConfig()

	var nQ, nTDQM, nCNF, nNoRelax int
	for i := 0; i < 100; i++ {
		q := s.RandomQuery(rng, cfg)
		tr := core.NewTranslator(s.Spec)
		viaTDQM, err := tr.TDQM(q)
		must(err)
		viaCNF, err := tr.CNFMap(q)
		must(err)
		trNR := core.NewTranslator(exactOnly)
		viaNoRelax, err := trNR.TDQM(q)
		must(err)
		for j := 0; j < 150; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			must(err)
			inT, err := s.Eval.EvalQuery(viaTDQM, tup)
			must(err)
			inC, err := s.Eval.EvalQuery(viaCNF, tup)
			must(err)
			inN, err := s.Eval.EvalQuery(viaNoRelax, tup)
			must(err)
			if inQ && (!inT || !inC || !inN) {
				panic("baseline missed an answer — subsumption violated")
			}
			if inQ {
				nQ++
			}
			if inT {
				nTDQM++
			}
			if inC {
				nCNF++
			}
			if inN {
				nNoRelax++
			}
		}
	}
	ratio := func(n int) string { return fmt.Sprintf("%d (%.2fx exact)", n, float64(n)/float64(nQ)) }
	table([]string{"translation", "tuples returned"}, [][]string{
		{"exact answers (Q)", fmt.Sprint(nQ)},
		{"TDQM (dependency-aware, relaxing)", ratio(nTDQM)},
		{"CNF baseline (no dependencies)", ratio(nCNF)},
		{"no semantic relaxation (drop unsupported)", ratio(nNoRelax)},
	})
	// Dependency-heavy family (the Example 2 shape): each query splits a
	// dependent pair across a disjunction — exactly where dependency-blind
	// translation loses the most.
	fmt.Println("\ndependency-heavy family (Example 2 shape: (p ∨ x) ∧ q with {p,q} a pair):")
	nQ, nTDQM, nCNF = 0, 0, 0
	for i := 0; i < 100; i++ {
		g := s.Groups[3+rng.Intn(2)] // a pair group
		indep := s.Groups[rng.Intn(3)].Attrs[0]
		q := qtree.AndOf(
			qtree.OrOf(
				qtree.Leaf(s.Constraint(g.Attrs[0], rng.Intn(3))),
				qtree.Leaf(s.Constraint(indep, rng.Intn(3)))),
			qtree.Leaf(s.Constraint(g.Attrs[1], rng.Intn(3))),
		)
		tr := core.NewTranslator(s.Spec)
		viaTDQM, err := tr.TDQM(q)
		must(err)
		viaCNF, err := tr.CNFMap(q)
		must(err)
		for j := 0; j < 150; j++ {
			tup := s.RandomTuple(rng)
			inQ, err := s.Eval.EvalQuery(q, tup)
			must(err)
			inT, err := s.Eval.EvalQuery(viaTDQM, tup)
			must(err)
			inC, err := s.Eval.EvalQuery(viaCNF, tup)
			must(err)
			if inQ {
				nQ++
			}
			if inT {
				nTDQM++
			}
			if inC {
				nCNF++
			}
		}
	}
	table([]string{"translation", "tuples returned"}, [][]string{
		{"exact answers (Q)", fmt.Sprint(nQ)},
		{"TDQM", ratio(nTDQM)},
		{"CNF baseline", ratio(nCNF)},
	})
	fmt.Println("\npaper (Section 3): ignoring dependencies or dropping unsupported")
	fmt.Println("constraints stays correct but loses selectivity — the source ships")
	fmt.Println("more false positives for the mediator to filter. TDQM is minimal.")
}
