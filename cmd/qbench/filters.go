package main

// Experiment E14 (extension): quantify the filtering work saved by
// per-branch filters (Translator.TranslateBranches) over the whole-query
// fallback filter, on random disjunctive queries. Not a paper table — the
// paper defers filter generation to its refs [15, 16] — but it measures the
// practical benefit of the tight residues the library computes.

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/qtree"
	"repro/internal/workload"
)

func runE14() {
	s := workload.New(workload.Config{Indep: 4, Pairs: 2, InexactPairs: 2})
	rng := rand.New(rand.NewSource(14))
	cfg := workload.QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.35}

	var globalChecks, branchChecks, tuples int
	queries := 0
	for i := 0; i < 120; i++ {
		// Disjunctive-rooted queries: a union of 2–4 independent branches.
		n := 2 + rng.Intn(3)
		kids := make([]*qtree.Node, n)
		for j := range kids {
			kids[j] = s.RandomQuery(rng, cfg)
		}
		q := qtree.Or(kids...).Normalize()
		tr := core.NewTranslator(s.Spec)
		mapped, filter, err := tr.TranslateWithFilter(q, core.AlgTDQM)
		must(err)
		branches, err := tr.TranslateBranches(q, core.AlgTDQM)
		must(err)
		queries++
		for j := 0; j < 120; j++ {
			tup := s.RandomTuple(rng)
			tuples++
			// Global: every tuple passing S(Q) is re-checked with F
			// (when F is non-trivial).
			inS, err := s.Eval.EvalQuery(mapped, tup)
			must(err)
			if inS && !filter.IsTrue() {
				globalChecks++
			}
			// Per-branch: a tuple admitted by an *exact* branch needs no
			// re-check (the executor tries exact branches first); only
			// tuples admitted solely by inexact branches are re-checked.
			exactHit, inexactHit := false, false
			for _, b := range branches {
				inB, err := s.Eval.EvalQuery(b.Mapped, tup)
				must(err)
				if !inB {
					continue
				}
				if b.Filter.IsTrue() {
					exactHit = true
					break
				}
				inexactHit = true
			}
			if !exactHit && inexactHit {
				branchChecks++
			}
		}
	}
	table([]string{"metric", "value"}, [][]string{
		{"random disjunctive queries", fmt.Sprint(queries)},
		{"tuples probed", fmt.Sprint(tuples)},
		{"filter re-checks, global F", fmt.Sprint(globalChecks)},
		{"filter re-checks, per-branch F", fmt.Sprint(branchChecks)},
		{"saved", fmt.Sprintf("%.0f%%", 100*(1-float64(branchChecks)/float64(max(globalChecks, 1))))},
	})
	fmt.Println("\nextension: branches that translate exactly need no re-checking, so")
	fmt.Println("per-branch filters (tight residues per Example 3) reduce filter work.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
