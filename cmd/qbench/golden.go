package main

// The golden experiments E1–E7 re-execute the paper's worked examples and
// print what the paper's figures show next to what the library computed.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/sources"
)

func runE1() {
	am, cl := sources.NewAmazon(), sources.NewClbooks()
	med := mediator.New(am, cl)

	books := sources.GenBooks(99, 200)
	books = append(books,
		sources.Book{Title: "reversed decoy", Ln: "Tom", Fn: "Clancy", Year: 1997, Month: 1, Day: 5, Category: "D.3", Publisher: "oreilly", IDNo: "000000001A", Keywords: []string{"decoy"}},
		sources.Book{Title: "middle-name decoy", Ln: "Clancy", Fn: "Joe Tom", Year: 1996, Month: 7, Day: 9, Category: "H.2", Publisher: "mit-press", IDNo: "000000002B", Keywords: []string{"decoy"}},
		sources.Book{Title: "the hunt for red october", Ln: "Clancy", Fn: "Tom", Year: 1997, Month: 3, Day: 1, Category: "D.3", Publisher: "oreilly", IDNo: "000000003C", Keywords: []string{"hunt"}},
	)
	catalog := sources.BookRelation("catalog", books)
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}

	q := qparse.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`)
	tr, err := med.Translate(q)
	must(err)

	var rows [][]string
	exact, _ := catalog.Select(q, med.Eval)
	for _, st := range tr.Sources {
		raw, err := data[st.Source.Name].Select(st.Query, st.Source.Eval)
		must(err)
		rows = append(rows, []string{
			st.Source.Name, st.Query.String(),
			fmt.Sprint(raw.Len()), fmt.Sprint(raw.Len() - exact.Len()),
		})
	}
	fmt.Println("Q =", q)
	fmt.Printf("exact answers in catalog: %d\n\n", exact.Len())
	table([]string{"source", "S(Q)", "raw", "false positives"}, rows)

	// Example 2: dependency-aware mapping of (f1 ∨ f2) ∧ f3.
	q2 := qparse.MustParse(`([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]`)
	t2 := core.NewTranslator(am.Spec)
	qb, err := t2.TDQM(q2)
	must(err)
	// The naive per-conjunct translation Qa of Example 2.
	c1, err := t2.DNFMap(qparse.MustParse(`[ln = "Clancy"] or [ln = "Klancy"]`))
	must(err)
	res3, err := t2.SCMQuery(qparse.MustParse(`[fn = "Tom"]`))
	must(err)
	qa := qtree.AndOf(c1, res3.Query)

	rawQa, _ := catalog.Select(qa, am.Eval)
	rawQb, _ := catalog.Select(qb, am.Eval)
	exact2, _ := catalog.Select(q2, med.Eval)
	fmt.Println()
	fmt.Println("Example 2: Q =", q2)
	table([]string{"mapping", "query", "answers"}, [][]string{
		{"Qa (conjuncts separated)", qa.String(), fmt.Sprint(rawQa.Len())},
		{"Qb (dependency-aware)", qb.String(), fmt.Sprint(rawQb.Len())},
		{"exact", q2.String(), fmt.Sprint(exact2.Len())},
	})
	fmt.Println("\npaper: Qb is strictly more selective than Qa and equals the minimal mapping.")
}

func runE2() {
	am := sources.NewAmazon()
	tr := core.NewTranslator(am.Spec)

	cases := []struct{ name, q string }{
		{"Q1", `[ln = "Smith"] and [ti contains java(near)jdk] and [pyear = 1997] and [pmonth = 5] and [kwd contains www]`},
		{"Q2", `[publisher = "oreilly"] and [ti = "jdkforjava"] and [category = "D.3"] and [id-no = "081815181Y"]`},
	}
	var rows [][]string
	for _, c := range cases {
		q := qparse.MustParse(c.q)
		s, err := tr.Translate(q, core.AlgSCM)
		must(err)
		rows = append(rows, []string{c.name, q.String()})
		rows = append(rows, []string{"→ " + c.name, s.String()})
	}
	table([]string{"query", "constraints"}, rows)
	fmt.Println("\npaper (Figure 2): S1 = aa ∧ at1 ∧ ad ∧ (at2 ∨ as1); S2 = ap ∧ at3 ∧ as2 ∧ ai.")
}

func runE3() {
	med := mediator.New(sources.NewT1(), sources.NewT2())
	med.Glue = sources.LibraryGlue()
	q := qparse.MustParse(`[fac.ln = pub.ln] and [fac.fn = pub.fn] and ` +
		`[fac.bib contains data(near)mining] and [fac.dept = cs]`)
	tr, err := med.Translate(q)
	must(err)

	var rows [][]string
	for _, st := range tr.Sources {
		rows = append(rows, []string{"S_" + st.Source.Name + "(Q)", st.Query.String()})
	}
	rows = append(rows, []string{"F", tr.Filter.String()})
	fmt.Println("Q =", q)
	fmt.Println()
	table([]string{"mapping", "result"}, rows)

	people, papers := sources.GenLibrary(42, 12, 30)
	data := map[string]*engine.Relation{
		"t1": sources.T1Relation(people, papers),
		"t2": sources.T2Relation(people),
	}
	result, _, err := med.ExecuteJoin(q, data)
	must(err)
	universe := engine.Product(data["t1"], data["t2"])
	glued, err := universe.Select(med.Glue, med.Eval)
	must(err)
	direct, err := glued.Select(q, med.Eval)
	must(err)
	fmt.Printf("\nEq. 3 check on synthetic data: mediated answers = %d, direct evaluation = %d\n",
		result.Len(), direct.Len())
	fmt.Println("paper: S1 = x1 ∧ x2 ∧ x3 (joined names + relaxed bib), S2 = [prof.dept = 230], F = c.")
}

func runE4() {
	am := sources.NewAmazon()
	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)

	trT := core.NewTranslator(am.Spec)
	viaTDQM, err := trT.TDQM(qbook)
	must(err)
	trD := core.NewTranslator(am.Spec)
	viaDNF, err := trD.DNFMap(qbook)
	must(err)

	fmt.Println("Q_book =", qbook)
	fmt.Println()
	table([]string{"algorithm", "output size", "SCM calls", "structure rewrites", "output"},
		[][]string{
			{"TDQM", fmt.Sprint(viaTDQM.Size()), fmt.Sprint(trT.Stats.SCMCalls),
				fmt.Sprint(trT.Stats.Disjunctivizations), viaTDQM.String()},
			{"DNF", fmt.Sprint(viaDNF.Size()), fmt.Sprint(trD.Stats.SCMCalls),
				"global", viaDNF.String()},
		})

	p, err := core.NewTranslator(am.Spec).PSafe(qbook.Normalize().Kids)
	must(err)
	fmt.Printf("\nPSafe partition: %s  (paper: {Č1} and {Č2, Č3})\n", p)
}

func runE5() {
	am := sources.NewAmazon()
	tr := core.NewTranslator(am.Spec)
	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`).Normalize()

	mp, err := tr.PotentialMatchings(qbook)
	must(err)
	fmt.Println("potential matchings M_p:")
	for _, m := range mp {
		fmt.Println("  ", m)
	}
	fmt.Println()
	names := []string{"Č1 (names/keywords)", "Č2 (pyear)", "Č3 (pmonths)"}
	var rows [][]string
	for i, c := range qbook.Kids {
		de := tr.EDNF(c, mp)
		rows = append(rows, []string{names[i], de.String()})
	}
	table([]string{"conjunct", "essential DNF"}, rows)
	fmt.Println("\npaper (Figure 7 / Example 11): De(Č1) = ε, De(Č2) = fy, De(Č3) = fm1 ∨ fm2;")
	fmt.Println("Q_book is unsafe via cross-matchings {fy,fm1}, {fy,fm2}.")
}

func runE6() {
	g := sources.NewMapSource()
	tr := core.NewTranslator(g.Spec)

	oracle := func(broader, narrower *qtree.Node) (bool, error) {
		for x := -10.0; x <= 60; x += 5 {
			for y := -10.0; y <= 60; y += 5 {
				tup := sources.MapTuple(x, y)
				inN, err := g.Eval.EvalQuery(narrower, tup)
				if err != nil {
					return false, err
				}
				if !inN {
					continue
				}
				inB, err := g.Eval.EvalQuery(broader, tup)
				if err != nil {
					return false, err
				}
				if !inB {
					return false, nil
				}
			}
		}
		return true, nil
	}

	f1 := qtree.SetOfConstraints(qparse.MustParse(`[xmin = 10]`))
	f2 := qtree.SetOfConstraints(qparse.MustParse(`[xmax = 30]`))
	f3 := qtree.SetOfConstraints(qparse.MustParse(`[ymin = 20]`))
	f4 := qtree.SetOfConstraints(qparse.MustParse(`[ymax = 40]`))

	type caseRow struct {
		name     string
		conjs    []*qtree.ConstraintSet
		paperSep string
	}
	cases := []caseRow{
		{"(f1 f2)(f3 f4)", []*qtree.ConstraintSet{f1.Union(f2), f3.Union(f4)}, "separable"},
		{"(f1 f4)(f2 f3)", []*qtree.ConstraintSet{f1.Union(f4), f2.Union(f3)}, "inseparable"},
	}
	var rows [][]string
	for _, c := range cases {
		delta, err := tr.CrossMatchings(c.conjs)
		must(err)
		safe, err := tr.SafeBase(c.conjs)
		must(err)
		sep, err := tr.SeparableBase(c.conjs, oracle)
		must(err)
		rows = append(rows, []string{c.name, fmt.Sprint(len(delta)), fmt.Sprint(safe),
			fmt.Sprint(sep), c.paperSep})
	}
	table([]string{"conjunction", "cross-matchings", "Defn.5 safe", "Thm.3 separable", "paper"}, rows)
	fmt.Println("\npaper: the first conjunction's cross-matchings are redundant (Figure 9).")
}

func runE7() {
	spec := xyuvSpec()
	tr := core.NewTranslator(spec)

	cases := []struct{ name, q, paper string }{
		{"Qa", `[x = 1] and [y = 1] and (([y = 1] and [u = 1]) or [v = 1])`, "{{Č1,Č2}, {Č3}}"},
		{"Qb", `[x = 1] and ([y = 1] or [u = 1]) and ([y = 1] or [v = 1])`, "{{Č1,Č2,Č3}}"},
	}
	var rows [][]string
	for _, c := range cases {
		q := qparse.MustParse(c.q).Normalize()
		p, err := tr.PSafe(q.Kids)
		must(err)
		rows = append(rows, []string{c.name, c.q, p.String(), c.paper})
	}
	table([]string{"query", "conjunction", "PSafe partition", "paper (Example 14)"}, rows)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
