package main

import (
	"repro/internal/qtree"
	"repro/internal/rules"
)

// xyuvSpec is the synthetic specification of Examples 13/14: constraints on
// x, y, u, v with matchings {x,y}, {u}, {v}.
func xyuvSpec() *rules.Spec {
	rs := rules.MustParseRules(`
rule RXY {
  match [x = A], [y = B];
  where Value(A), Value(B);
  emit exact [txy = A];
}
rule RU {
  match [u = A];
  where Value(A);
  emit exact [tu = A];
}
rule RV {
  match [v = A];
  where Value(A);
  emit exact [tv = A];
}
`)
	target := rules.NewTarget("xyuv",
		rules.Capability{Attr: "txy", Op: qtree.OpEq},
		rules.Capability{Attr: "tu", Op: qtree.OpEq},
		rules.Capability{Attr: "tv", Op: qtree.OpEq},
	)
	return rules.MustSpec("K_xyuv", target, rules.NewRegistry(), rs...)
}
