package main

// Experiment E13 quantifies the contribution of each design element by
// running deliberately weakened algorithm variants (internal/core's
// ablation API) on the workloads of E9–E11.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/qparse"
	"repro/internal/sources"
	"repro/internal/workload"
)

func runE13() {
	am := sources.NewAmazon()

	// (a) Submatching suppression (Algorithm SCM step 2).
	fmt.Println("(a) SCM with vs without submatching suppression, Q = pyear ∧ pmonth:")
	tr := core.NewTranslator(am.Spec)
	cs := qparse.MustParse(`[pyear = 1997] and [pmonth = 5]`).SimpleConjuncts()
	res, err := tr.SCM(cs)
	must(err)
	noSup, err := tr.SCMNoSuppression(cs)
	must(err)
	table([]string{"variant", "output", "nodes"}, [][]string{
		{"SCM", res.Query.String(), fmt.Sprint(res.Query.Size())},
		{"no suppression", noSup.String(), fmt.Sprint(noSup.Size())},
	})

	// (b) PSafe partitioning inside TDQM.
	fmt.Println("\n(b) TDQM with vs without PSafe (mostly separable conjunctions):")
	var rows [][]string
	for _, k := range []int{4, 8, 12} {
		s, q := workload.WorstCaseCompactness(k)
		trFull := core.NewTranslator(s.Spec)
		out, err := trFull.TDQM(q)
		must(err)
		nsFull := bench(func() {
			_, err := trFull.TDQM(q)
			must(err)
		})
		trAb := core.NewTranslator(s.Spec)
		outAb, err := trAb.TDQMNoPartition(q)
		must(err)
		nsAb := bench(func() {
			_, err := trAb.TDQMNoPartition(q)
			must(err)
		})
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%d nodes / %.0f ns", out.Size(), nsFull),
			fmt.Sprintf("%d nodes / %.0f ns", outAb.Size(), nsAb),
		})
	}
	table([]string{"k", "TDQM (with PSafe)", "TDQM without PSafe"}, rows)

	// (c) EDNF vs full DNF in the safety check.
	fmt.Println("\n(c) PSafe safety check with EDNF vs full DNF (n=4, k=3):")
	rows = nil
	for e := 0; e <= 3; e++ {
		s, q := workload.DependencyConjunction(4, 3, e)
		ednfTr := core.NewTranslator(s.Spec)
		_, err := ednfTr.PSafe(q.Kids)
		must(err)
		fullTr := core.NewTranslator(s.Spec)
		fullTr.SetFullDNFSafety(true)
		_, err = fullTr.PSafe(q.Kids)
		must(err)
		nsE := bench(func() {
			tr := core.NewTranslator(s.Spec)
			_, err := tr.PSafe(q.Kids)
			must(err)
		})
		nsF := bench(func() {
			tr := core.NewTranslator(s.Spec)
			tr.SetFullDNFSafety(true)
			_, err := tr.PSafe(q.Kids)
			must(err)
		})
		rows = append(rows, []string{
			fmt.Sprint(e),
			fmt.Sprintf("%d terms / %.0f ns", ednfTr.Stats.ProductTerms, nsE),
			fmt.Sprintf("%d terms / %.0f ns", fullTr.Stats.ProductTerms, nsF),
		})
	}
	table([]string{"e", "EDNF", "full DNF"}, rows)
	fmt.Println("\neach ablation removes one design element the paper argues for; the")
	fmt.Println("partitions and answer sets stay identical (verified by tests), only")
	fmt.Println("cost and compactness degrade.")
}
