// Package repro is the root of a reproduction of "Mind Your Vocabulary:
// Query Mapping Across Heterogeneous Information Sources" (Chang &
// García-Molina, SIGMOD 1999).
//
// The public API lives in package repro/querymap; the benchmark harness in
// bench_test.go regenerates the paper's evaluation (see EXPERIMENTS.md),
// and cmd/qbench prints the same tables outside the testing framework.
package repro
