package repro

// Benchmark harness: one testing.B benchmark per experiment in the paper's
// evaluation (see DESIGN.md's experiment index). The paper reports worked
// examples and analytic complexity/compactness claims rather than numeric
// tables; each claim maps to a benchmark family here, and cmd/qbench prints
// the corresponding human-readable tables.
//
//	go test -bench=. -benchmem
//
// Reported custom metrics:
//
//	nodes/out       translated-query parse-tree size (compactness, Section 8)
//	terms/op        product terms examined by safety checks (EDNF cost)
//	disjuncts/op    DNF disjuncts processed by Algorithm DNF

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/serve"
	"repro/internal/sources"
	"repro/internal/workload"
)

// --- E2 (Figure 2): SCM on the paper's Amazon queries ---------------------

func BenchmarkFigure2SCM(b *testing.B) {
	am := sources.NewAmazon()
	queries := map[string]string{
		"Q1": `[ln = "Smith"] and [ti contains java(near)jdk] and [pyear = 1997] and [pmonth = 5] and [kwd contains www]`,
		"Q2": `[publisher = "oreilly"] and [ti = "jdkforjava"] and [category = "D.3"] and [id-no = "081815181Y"]`,
	}
	for name, src := range queries {
		q := qparse.MustParse(src)
		cs := q.SimpleConjuncts()
		b.Run(name, func(b *testing.B) {
			tr := core.NewTranslator(am.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.SCM(cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3 (Example 3): multi-source translation ------------------------------

func BenchmarkExample3Mediation(b *testing.B) {
	med := mediator.New(sources.NewT1(), sources.NewT2())
	q := qparse.MustParse(`[fac.ln = pub.ln] and [fac.fn = pub.fn] and ` +
		`[fac.bib contains data(near)mining] and [fac.dept = cs]`)
	b.Run("translate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := med.Translate(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	people, papers := sources.GenLibrary(42, 10, 25)
	data := map[string]*engine.Relation{
		"t1": sources.T1Relation(people, papers),
		"t2": sources.T2Relation(people),
	}
	med.Glue = sources.LibraryGlue()
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := med.ExecuteJoin(q, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E4 (Example 6 / Figure 7): Q_book under both algorithms --------------

func BenchmarkQBook(b *testing.B) {
	am := sources.NewAmazon()
	qbook := qparse.MustParse(
		`(([ln = "Smith"] and [fn = "John"]) or [kwd contains web] or [kwd contains java]) ` +
			`and [pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`)
	b.Run("TDQM", func(b *testing.B) {
		tr := core.NewTranslator(am.Spec)
		var size int
		for i := 0; i < b.N; i++ {
			out, err := tr.TDQM(qbook)
			if err != nil {
				b.Fatal(err)
			}
			size = out.Size()
		}
		b.ReportMetric(float64(size), "nodes/out")
	})
	b.Run("DNF", func(b *testing.B) {
		tr := core.NewTranslator(am.Spec)
		var size int
		for i := 0; i < b.N; i++ {
			out, err := tr.DNFMap(qbook)
			if err != nil {
				b.Fatal(err)
			}
			size = out.Size()
		}
		b.ReportMetric(float64(size), "nodes/out")
	})
}

// --- E8 (Section 4.4): SCM scaling in N and R ------------------------------

func BenchmarkSCM_N(b *testing.B) {
	s := workload.New(workload.Config{Indep: 128, Pairs: 64})
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{4, 16, 64, 256} {
		q := s.SimpleConjunction(rng, n)
		cs := q.SimpleConjuncts()
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.SCM(cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSCM_R(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, groups := range []int{8, 32, 128} {
		s := workload.New(workload.Config{Indep: groups, Pairs: groups / 2})
		q := s.SimpleConjunction(rng, 24)
		cs := q.SimpleConjuncts()
		b.Run(fmt.Sprintf("R=%d", len(s.Spec.Rules)), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.SCM(cs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9 (Section 8): TDQM vs DNF without dependencies ----------------------

func BenchmarkNoDeps(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		s, q := workload.IndependentTree(n)
		b.Run(fmt.Sprintf("TDQM/n=%d", n), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.TDQM(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DNF/n=%d", n), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			tr.ResetStats()
			for i := 0; i < b.N; i++ {
				if _, err := tr.DNFMap(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Stats.DNFDisjuncts)/float64(b.N), "disjuncts/op")
		})
	}
}

// --- E10 (Section 8): compactness family ------------------------------------

func BenchmarkCompactness(b *testing.B) {
	for _, k := range []int{4, 8, 12} {
		s, q := workload.WorstCaseCompactness(k)
		b.Run(fmt.Sprintf("TDQM/k=%d", k), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			var size int
			for i := 0; i < b.N; i++ {
				out, err := tr.TDQM(q)
				if err != nil {
					b.Fatal(err)
				}
				size = out.Size()
			}
			b.ReportMetric(float64(size), "nodes/out")
		})
		b.Run(fmt.Sprintf("DNF/k=%d", k), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			var size int
			for i := 0; i < b.N; i++ {
				out, err := tr.DNFMap(q)
				if err != nil {
					b.Fatal(err)
				}
				size = out.Size()
			}
			b.ReportMetric(float64(size), "nodes/out")
		})
	}
}

// --- E11 (Section 8): safety-check cost vs dependency degree ---------------

func BenchmarkEDNFSafety(b *testing.B) {
	const n, k = 4, 3
	for e := 0; e <= 3; e++ {
		s, q := workload.DependencyConjunction(n, k, e)
		b.Run(fmt.Sprintf("e=%d", e), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			tr.ResetStats()
			for i := 0; i < b.N; i++ {
				if _, err := tr.PSafe(q.Kids); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Stats.ProductTerms)/float64(b.N), "terms/op")
		})
	}
}

// --- E13: ablations ---------------------------------------------------------

func BenchmarkAblationNoPartition(b *testing.B) {
	for _, k := range []int{4, 8} {
		s, q := workload.WorstCaseCompactness(k)
		b.Run(fmt.Sprintf("with-psafe/k=%d", k), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.TDQM(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("no-psafe/k=%d", k), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.TDQMNoPartition(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationFullDNFSafety(b *testing.B) {
	const n, k = 4, 3
	for e := 0; e <= 3; e++ {
		s, q := workload.DependencyConjunction(n, k, e)
		b.Run(fmt.Sprintf("ednf/e=%d", e), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			for i := 0; i < b.N; i++ {
				if _, err := tr.PSafe(q.Kids); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fulldnf/e=%d", e), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			tr.SetFullDNFSafety(true)
			for i := 0; i < b.N; i++ {
				if _, err := tr.PSafe(q.Kids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E12: end-to-end mediation over the bookstore catalog ------------------

func BenchmarkUnionMediation(b *testing.B) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(3, 500))
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	q := qparse.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`)
	for i := 0; i < b.N; i++ {
		if _, _, err := med.ExecuteUnion(q, data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving layer: canonical translation cache and concurrent fan-out -----

// BenchmarkServeCachedVsCold compares a cold mediator translation (full
// TDQM for every source) against a warm canonical-cache hit on the
// Example 3 library workload. The hit skips TDQM entirely — only the
// canonical key is recomputed.
func BenchmarkServeCachedVsCold(b *testing.B) {
	med := mediator.New(sources.NewT1(), sources.NewT2())
	q := qparse.MustParse(`([fac.dept = cs] or [fac.dept = ee]) and [fac.bib contains data(near)mining]`)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := med.Translate(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		ct := serve.NewCachingTranslator(med, 64)
		if _, err := ct.Translate(q); err != nil { // warm the entry
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ct.Translate(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeParallel drives the full serving layer (cached translation
// + concurrent per-source fan-out + merge) with GOMAXPROCS client
// goroutines over the bookstore catalog.
func BenchmarkServeParallel(b *testing.B) {
	med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
	catalog := sources.BookRelation("catalog", sources.GenBooks(3, 500))
	med.Indexes = map[string]engine.IndexSet{
		"amazon":  engine.BuildIndexes(catalog, "publisher", "isbn", "subject"),
		"clbooks": engine.BuildIndexes(catalog, "publisher"),
	}
	data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
	srv := serve.New(med, data, serve.Config{CacheSize: 64})
	queries := []*qtree.Node{
		qparse.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`),
		qparse.MustParse(`[pyear = 1997] and [pmonth = 5]`),
		qparse.MustParse(`([ln = "Clancy"] and [fn = "Tom"]) or [kwd contains web]`),
		qparse.MustParse(`[ti contains java(near)jdk]`),
	}
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.ReportMetric(srv.Stats().HitRate()*100, "hit%")
}

// BenchmarkServeStreaming drives the streaming per-shard pipeline (ISSUE 6
// tentpole) over growing bookstore catalogs with a year-range query whose
// answer grows linearly with the catalog. Each size reports answers/op (the
// result size actually streamed) and peak-tuples (the qmap_stream_peak_in_flight
// high-water mark): ns/op grows with the catalog while peak-tuples stays
// bounded by O(shards × buffer) — the pipeline's memory-bound claim.
func BenchmarkServeStreaming(b *testing.B) {
	const shards, buffer = 4, 8
	query := qparse.MustParse(`[pyear = 1997] or [pyear = 1996]`)
	for _, nBooks := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("books=%d", nBooks), func(b *testing.B) {
			med := mediator.New(sources.NewAmazon(), sources.NewClbooks())
			catalog := sources.BookRelation("catalog", sources.GenBooks(5, nBooks))
			data := map[string]*engine.Relation{"amazon": catalog, "clbooks": catalog}
			srv := serve.New(med, data, serve.Config{
				CacheSize:    16,
				Stream:       true,
				Shards:       shards,
				StreamBuffer: buffer,
			})
			ctx := context.Background()
			var answers int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, err := srv.Query(ctx, query)
				if err != nil {
					b.Fatal(err)
				}
				answers = rel.Len()
			}
			st := srv.Stats()
			b.ReportMetric(float64(answers), "answers/op")
			b.ReportMetric(float64(st.StreamPeakInFlight), "peak-tuples")
		})
	}
}

// BenchmarkServeSharedMatchCache isolates the cross-request matchings cache
// (ISSUE 5 tentpole): the translation cache is pinned to one entry so a
// rotation of distinct queries re-translates on every request, and the only
// cross-request reuse is SCM matchings through the shared MatchCache. "off"
// disables it (MatchCacheSize < 0); "warm" runs with the default cache and
// reports its hit rate.
func BenchmarkServeSharedMatchCache(b *testing.B) {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	rng := rand.New(rand.NewSource(31))
	cfg := workload.QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.4}
	queries := make([]*qtree.Node, 32)
	for i := range queries {
		queries[i] = s.RandomQuery(rng, cfg)
	}
	ctx := context.Background()
	for _, variant := range []struct {
		name string
		size int
	}{{"off", -1}, {"warm", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			med := mediator.New(&sources.Source{Name: "w1", Spec: s.Spec, Eval: s.Eval})
			srv := serve.New(med, nil, serve.Config{CacheSize: 1, MatchCacheSize: variant.size})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Translate(ctx, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			if mc := srv.MatchCache(); mc != nil {
				b.ReportMetric(mc.Stats().HitRate()*100, "hit%")
			}
		})
	}
}

// BenchmarkTranslateBatchVsLoop compares per-query translation on fresh
// translators (the cold path a naive caller pays) against one TranslateBatch
// call with a shared matchings cache. Both report ns per query via b.N
// scaling: each op is one full pass over the 32-query rotation.
func BenchmarkTranslateBatchVsLoop(b *testing.B) {
	s := workload.New(workload.Config{Indep: 6, Pairs: 3, InexactPairs: 2, Triples: 1})
	rng := rand.New(rand.NewSource(31))
	cfg := workload.QueryConfig{MaxDepth: 3, MaxFanout: 3, LeafProb: 0.4}
	queries := make([]*qtree.Node, 32)
	for i := range queries {
		queries[i] = s.RandomQuery(rng, cfg)
	}
	ctx := context.Background()
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				tr := core.NewTranslator(s.Spec)
				if _, err := tr.Do(ctx, q, core.AlgTDQM); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		mc := core.NewMatchCache(0)
		tr := core.NewTranslator(s.Spec, core.WithMatchCache(mc))
		for i := 0; i < b.N; i++ {
			for _, r := range tr.TranslateBatch(ctx, queries, core.AlgTDQM) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportMetric(mc.Stats().HitRate()*100, "hit%")
	})
}

// --- Random complex queries: throughput of the full TDQM pipeline ----------

func BenchmarkTDQMRandom(b *testing.B) {
	s := workload.New(workload.Config{Indep: 4, Pairs: 2, InexactPairs: 1, Triples: 1})
	rng := rand.New(rand.NewSource(21))
	cfg := workload.DefaultQueryConfig()
	queries := make([]*qtree.Node, 64)
	for i := range queries {
		queries[i] = s.RandomQuery(rng, cfg)
	}
	tr := core.NewTranslator(s.Spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TDQM(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tentpole (ISSUE 4): compiled dispatch, memo, parallel branches --------

// BenchmarkDegreeSweep is the e-vs-k cost claim (Sections 4.4, 8) measured
// end to end: TDQM over an n-conjunct query with k leaves per conjunct and
// dependency degree e. With the compiled matcher and translation memo
// (both default-on), terms/op and attempts/op should stay near-flat as k
// grows at fixed e — cost tracks the dependency degree, not query size.
func BenchmarkDegreeSweep(b *testing.B) {
	const n = 4
	for _, e := range []int{0, 2} {
		for _, k := range []int{2, 4, 8} {
			s, q := workload.DependencyConjunction(n, k, e)
			b.Run(fmt.Sprintf("e=%d/k=%d", e, k), func(b *testing.B) {
				tr := core.NewTranslator(s.Spec)
				for i := 0; i < b.N; i++ {
					if _, err := tr.TDQM(q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(tr.Stats.ProductTerms)/float64(b.N), "terms/op")
				b.ReportMetric(float64(tr.Stats.RuleAttempts)/float64(b.N), "attempts/op")
			})
		}
	}
}

// BenchmarkDegreeSweepUncompiled is the same sweep with the compiled
// dispatch engine and memo disabled — the baseline BENCH_matching.json
// compares against.
func BenchmarkDegreeSweepUncompiled(b *testing.B) {
	const n = 4
	for _, e := range []int{0, 2} {
		for _, k := range []int{2, 4, 8} {
			s, q := workload.DependencyConjunction(n, k, e)
			b.Run(fmt.Sprintf("e=%d/k=%d", e, k), func(b *testing.B) {
				tr := core.NewTranslator(s.Spec)
				tr.SetCompiled(false)
				tr.SetMemo(false)
				for i := 0; i < b.N; i++ {
					if _, err := tr.TDQM(q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(tr.Stats.ProductTerms)/float64(b.N), "terms/op")
				b.ReportMetric(float64(tr.Stats.RuleAttempts)/float64(b.N), "attempts/op")
			})
		}
	}
}

// BenchmarkTDQMParallelBranches measures bounded parallel branch mapping on
// a wide disjunction (random workload queries joined under one Or).
func BenchmarkTDQMParallelBranches(b *testing.B) {
	s := workload.New(workload.Config{Indep: 4, Pairs: 2, InexactPairs: 1, Triples: 1})
	rng := rand.New(rand.NewSource(23))
	cfg := workload.DefaultQueryConfig()
	branches := make([]*qtree.Node, 16)
	for i := range branches {
		branches[i] = s.RandomQuery(rng, cfg)
	}
	wide := qtree.Or(branches...).Normalize()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := core.NewTranslator(s.Spec)
			tr.SetParallelism(workers)
			for i := 0; i < b.N; i++ {
				if _, err := tr.TDQM(wide); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
