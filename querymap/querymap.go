// Package querymap is the public API of the constraint-query mapping
// library, a faithful reproduction of "Mind Your Vocabulary: Query Mapping
// Across Heterogeneous Information Sources" (Chang & García-Molina, SIGMOD
// 1999).
//
// The library translates Boolean constraint queries — expressions of
// [attr op value] and [attr1 op attr2] over ∧/∨ — from a mediator's
// vocabulary into each heterogeneous source's native vocabulary, guided by
// human-written mapping rules. Translations are minimal subsuming mappings:
// expressible at the target, never missing answers, and as selective as the
// target allows; a filter query removes the residual false positives.
//
// # Quick start
//
//	src := querymap.Amazon()
//	tr := querymap.NewTranslator(src.Spec)
//	q := querymap.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`)
//	s, _ := tr.Translate(q, querymap.AlgTDQM)
//	fmt.Println(s) // [author = "Clancy, Tom"]
//
// Four algorithms are provided: AlgSCM for simple conjunctions (Figure 4);
// AlgDNF — the exponential but simple baseline for complex queries
// (Figure 6); AlgTDQM (Figure 8), the paper's top-down mapper that rewrites
// query structure only where constraint dependencies require it; and
// AlgCNF, the dependency-blind Garlic-style baseline the paper's related
// work describes (correct but not minimal — for comparison studies).
//
// Mapping rules can be written in Go (package types) or in the rule DSL:
//
//	rule R6 {
//	  match [pyear = Y], [pmonth = M];
//	  where Value(Y), Value(M);
//	  let D = MonthYearToDate(M, Y);
//	  emit exact [pdate during D];
//	}
//
// See the examples/ directory for complete programs: a quick start, the
// bookstore mediator of Examples 1–2, the digital library of Example 3, and
// the map server of Example 8.
package querymap

import (
	"repro/internal/core"
	"repro/internal/datamap"
	"repro/internal/engine"
	"repro/internal/mediator"
	"repro/internal/qparse"
	"repro/internal/qtree"
	"repro/internal/resilience"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/sources"
	"repro/internal/values"
)

// Query model (package internal/qtree).
type (
	// Query is a constraint-query tree with alternating ∧/∨ interior nodes.
	Query = qtree.Node
	// Constraint is a selection [attr op value] or join [attr1 op attr2].
	Constraint = qtree.Constraint
	// Attr identifies an attribute, optionally view- and relation-qualified.
	Attr = qtree.Attr
	// Value is a typed constant (strings, ints, dates, text patterns, ...).
	Value = qtree.Value
	// ConstraintSet is a canonical set of constraints (rule matchings).
	ConstraintSet = qtree.ConstraintSet
)

// Node constructors and helpers re-exported from the query model.
var (
	// Parse parses the textual query language, e.g.
	// `[ln = "Clancy"] and ([fn = "Tom"] or [pyear = 1997])`.
	Parse = qparse.Parse
	// MustParse is Parse that panics on error.
	MustParse = qparse.MustParse
	// ParseConstraint parses a single bracketed constraint.
	ParseConstraint = qparse.ParseConstraint
	// NewAnd builds a normalized conjunction.
	NewAnd = qtree.AndOf
	// NewOr builds a normalized disjunction.
	NewOr = qtree.OrOf
	// NewLeaf wraps a constraint as a query.
	NewLeaf = qtree.Leaf
	// TrueQuery is the trivial query True.
	TrueQuery = qtree.True
	// Disjunctivize distributes a conjunction over its disjunctive
	// conjuncts (Figure 8).
	Disjunctivize = qtree.Disjunctivize
	// ToDNF converts a query into disjunctive normal form.
	ToDNF = qtree.ToDNF
	// Simplify applies Boolean absorption/implication simplification to a
	// query — useful for post-processing DNF-style translations (the
	// paper's term-minimization pointer, Section 8).
	Simplify = qtree.Simplify
	// Implies reports structural Boolean implication between queries
	// (sound, incomplete).
	Implies = qtree.Implies
)

// Rule system (package internal/rules).
type (
	// Rule is a mapping rule: head patterns + conditions, tail lets +
	// emission (Figure 3).
	Rule = rules.Rule
	// Spec is a mapping specification: the rules for one target context.
	Spec = rules.Spec
	// Registry resolves the condition and action functions rules call.
	Registry = rules.Registry
	// Target describes a source's native capabilities.
	Target = rules.Target
	// Capability is one supported (attribute, operator) combination.
	Capability = rules.Capability
	// Matching is one match of a rule head against query constraints.
	Matching = rules.Matching
	// Binding maps rule variables to bound values.
	Binding = rules.Binding
	// BoundVal is the value of a bound rule variable.
	BoundVal = rules.BoundVal
)

var (
	// ParseRules parses rule blocks in the DSL.
	ParseRules = rules.ParseRules
	// MustParseRules is ParseRules that panics on error.
	MustParseRules = rules.MustParseRules
	// NewRegistry returns a registry with the built-in conditions.
	NewRegistry = rules.NewRegistry
	// BaseRegistry returns a registry pre-loaded with the library's shared
	// conversion functions (LnFnToName, MonthYearToDate, RewriteTextPat...).
	BaseRegistry = sources.BaseRegistry
	// NewSpec assembles and validates a mapping specification.
	NewSpec = rules.NewSpec
	// NewTarget constructs a capability description.
	NewTarget = rules.NewTarget
	// FormatSpec renders a specification back to DSL text.
	FormatSpec = rules.FormatSpec
	// LintSpec statically checks a specification for common
	// rule-authoring mistakes.
	LintSpec = rules.Lint
)

// LintProblem is one finding of LintSpec.
type LintProblem = rules.Problem

// Spec algebra (packages internal/rules and internal/mediator): offline
// composition of mapping chains and structural containment checking.
type (
	// ComposeInfo reports what a composition did: rules composed, conversion
	// and constant lets recorded, exact rules retained, and per-b-rule fire
	// counts (zero-fire rules are dead under the composition).
	ComposeInfo = rules.ComposeInfo
	// ChainSpec is a multi-hop mapping chain precomposed into one spec,
	// retaining the original hops for differential checking.
	ChainSpec = mediator.ChainSpec
)

var (
	// Compose precomposes the chain a→b into one equivalent spec: translating
	// through it equals translating through a then b, after filtering.
	Compose = rules.Compose
	// ComposeDetail is Compose returning a ComposeInfo report.
	ComposeDetail = rules.ComposeDetail
	// Contains reports whether spec a subsumes spec b: for every query, a's
	// translation admits at least b's answers (sound, incomplete).
	Contains = rules.Contains
	// ContainsReport is Contains with per-rule diagnostics for the uncovered
	// rules.
	ContainsReport = rules.ContainsReport
	// LintComposition statically detects b-rules unreachable under the
	// composition a∘b.
	LintComposition = rules.LintComposition
	// NewChain composes mapping specs left to right into a ChainSpec
	// (mediator.Chain).
	NewChain = mediator.Chain
)

// Translation algorithms (package internal/core).
type (
	// Translator runs the mapping algorithms for one specification.
	Translator = core.Translator
	// TranslatorOption configures a Translator at construction time; see
	// WithParallelism, WithMatchCache, WithTracer, and friends.
	TranslatorOption = core.Option
	// Stats counts translation work (rule matching passes, product terms,
	// structure rewritings) for performance analysis.
	Stats = core.Stats
	// Partition is the safe conjunct partition computed by Algorithm PSafe.
	Partition = core.Partition
	// SCMResult is Algorithm SCM's output with matching/residue detail.
	SCMResult = core.SCMResult
	// Result is one translation outcome of Translator.Do: the mapped query,
	// the filter query, and the per-call work Stats.
	Result = core.Result
	// BatchResult is one query's outcome from Translator.TranslateBatch.
	BatchResult = core.BatchResult
	// MatchCache is a bounded, spec-keyed cache of rule-matching results
	// shared across translations and requests. Safe for concurrent use.
	MatchCache = core.MatchCache
	// MatchCacheStats is a point-in-time snapshot of a MatchCache's
	// hit/miss/eviction counters.
	MatchCacheStats = core.MatchCacheStats
	// Plan is a bounded, spec-keyed cache of translation fragments
	// (TDQM results, safe partitions, essential DNFs, SCM results) shared
	// across translations and requests and looked up by exact query shape.
	// Safe for concurrent use.
	Plan = core.Plan
	// PlanStats is a point-in-time snapshot of a Plan's
	// hit/miss/eviction counters.
	PlanStats = core.PlanStats
)

// Translator construction options.
var (
	// WithParallelism lets branch mapping fan out over up to n workers.
	WithParallelism = core.WithParallelism
	// WithMatchCache attaches a shared cross-translation matchings cache.
	WithMatchCache = core.WithMatchCache
	// WithTracer attaches an obs span tracer.
	WithTracer = core.WithTracer
	// WithMetrics attaches cumulative translation metrics.
	WithMetrics = core.WithMetrics
	// WithMemo enables or disables the per-translation matching memo.
	WithMemo = core.WithMemo
	// WithCompiled enables or disables the compiled rule-dispatch engine.
	WithCompiled = core.WithCompiled
	// WithFullDNFSafety selects the conservative per-disjunct safety check
	// of Algorithm DNF.
	WithFullDNFSafety = core.WithFullDNFSafety
	// NewMatchCache returns a shared matchings cache holding up to capacity
	// entries (DefaultMatchCacheSize if capacity <= 0).
	NewMatchCache = core.NewMatchCache
	// WithPlan attaches a shared cross-translation plan of precomputed
	// translation fragments.
	WithPlan = core.WithPlan
	// NewPlan returns a shared translation plan holding up to capacity
	// entries (DefaultPlanSize if capacity <= 0).
	NewPlan = core.NewPlan
)

// DefaultMatchCacheSize is the shared matchings-cache capacity used when a
// size is left unset.
const DefaultMatchCacheSize = core.DefaultMatchCacheSize

// DefaultPlanSize is the shared translation-plan capacity used when a size
// is left unset.
const DefaultPlanSize = core.DefaultPlanSize

// Algorithm names accepted by Translator.Translate.
const (
	// AlgSCM maps simple conjunctions (Algorithm SCM, Figure 4).
	AlgSCM = core.AlgSCM
	// AlgDNF is the DNF-based baseline (Algorithm DNF, Figure 6).
	AlgDNF = core.AlgDNF
	// AlgTDQM is top-down query mapping (Algorithm TDQM, Figure 8).
	AlgTDQM = core.AlgTDQM
	// AlgCNF is the Garlic-style dependency-blind baseline (Section 3):
	// correct but generally not minimal.
	AlgCNF = core.AlgCNF
)

// NewTranslator returns a translator for the given specification,
// configured by the options:
//
//	tr := querymap.NewTranslator(src.Spec,
//		querymap.WithParallelism(4),
//		querymap.WithMatchCache(querymap.NewMatchCache(0)))
func NewTranslator(spec *Spec, opts ...TranslatorOption) *Translator {
	return core.NewTranslator(spec, opts...)
}

// WithoutRelaxations derives a specification containing only the exact
// rules of spec — the "syntactic-only" wrapper model of Section 3, for
// comparison studies.
var WithoutRelaxations = core.WithoutRelaxations

// Execution engine (package internal/engine).
type (
	// Tuple is a typed attribute→value record.
	Tuple = engine.Tuple
	// Relation is a named bag of tuples.
	Relation = engine.Relation
	// Evaluator evaluates constraint queries over tuples, with per-attribute
	// operator overrides for source-specific semantics.
	Evaluator = engine.Evaluator
	// OpFunc is a custom predicate installed with Evaluator.Override.
	OpFunc = engine.OpFunc
)

var (
	// NewEvaluator returns an evaluator with standard operator semantics.
	NewEvaluator = engine.NewEvaluator
	// NewRelation constructs a relation.
	NewRelation = engine.NewRelation
)

// Mediation (package internal/mediator).
type (
	// Mediator orchestrates multi-source translation and execution.
	Mediator = mediator.Mediator
	// Translation is the per-source mapping set plus the global filter.
	Translation = mediator.Translation
	// SourceTranslation is one source's mapping and residue.
	SourceTranslation = mediator.SourceTranslation
	// Source bundles a source's spec and native evaluator.
	Source = sources.Source
)

// NewMediator returns a mediator over the given sources using AlgTDQM.
func NewMediator(srcs ...*Source) *Mediator { return mediator.New(srcs...) }

// Serving layer (package internal/serve): concurrency and caching around
// the mediation pipeline.
type (
	// CachingTranslator memoizes mediator translations in a bounded LRU
	// keyed by the query's canonical form, with singleflight suppression
	// of concurrent duplicate misses. Safe for concurrent use.
	CachingTranslator = serve.CachingTranslator
	// ServeConfig sizes a serve.Server. The grouped sub-structs
	// (ServeCacheConfig, ServeStreamConfig, ServeResilienceConfig) are the
	// primary surface; the flat fields marked Deprecated remain as a
	// source-compatible shim.
	ServeConfig = serve.Config
	// ServeCacheConfig groups the server's cache sizing and the TinyLFU
	// admission policy (ServeConfig.Cache).
	ServeCacheConfig = serve.CacheConfig
	// ServeStreamConfig groups the streaming pipeline's knobs
	// (ServeConfig.Streaming).
	ServeStreamConfig = serve.StreamConfig
	// ServeResilienceConfig groups the per-source breaker/retry/hedge layer
	// (ServeConfig.Resilience). The zero value disables everything.
	ServeResilienceConfig = serve.ResilienceConfig
	// BreakerConfig sizes a per-source circuit breaker (sliding outcome
	// window, trip ratio, cool-down, half-open probe bound).
	BreakerConfig = resilience.BreakerConfig
	// RetryConfig tunes the full-jitter exponential backoff between source
	// retry attempts.
	RetryConfig = resilience.RetryConfig
	// HedgeConfig tunes hedged source execution (launch quantile, delay
	// floor and cap).
	HedgeConfig = resilience.HedgeConfig
	// ServeServer runs cached translation and concurrent per-source
	// fan-out over a mediator, exposing atomic serving stats.
	ServeServer = serve.Server
	// ServeStats is a snapshot of a ServeServer's counters.
	ServeStats = serve.Stats
	// ServeOption configures a ServeServer built with Serve; see
	// ServeCacheSize, ServeWorkers, ServeMatchCache, and friends.
	ServeOption = serve.Option
	// ServeBatchResult is one query's outcome from
	// ServeServer.TranslateBatch.
	ServeBatchResult = serve.BatchResult
)

// Server construction options for Serve. Each mirrors one ServeConfig
// field; the serve-side matching-cache options are prefixed to keep them
// distinct from the translator-level WithMatchCache.
var (
	// ServeCacheSize bounds the canonical translation cache in entries.
	ServeCacheSize = serve.WithCacheSize
	// ServeWorkers bounds concurrently executing source selections.
	ServeWorkers = serve.WithWorkers
	// ServeSourceTimeout bounds each per-source select+filter execution.
	ServeSourceTimeout = serve.WithSourceTimeout
	// ServeExecutor overrides the per-source selection phase.
	ServeExecutor = serve.WithExecutor
	// ServeRegistry registers the server's metrics in a caller-owned
	// registry.
	ServeRegistry = serve.WithRegistry
	// ServeMatchCache installs a caller-owned shared matchings cache.
	ServeMatchCache = serve.WithMatchCache
	// ServeMatchCacheSize sizes the server-built shared matchings cache;
	// a negative size disables cross-request matching reuse.
	ServeMatchCacheSize = serve.WithMatchCacheSize
	// ServePlan installs a caller-owned shared translation plan.
	ServePlan = serve.WithPlan
	// ServePlanSize sizes the server-built shared translation plan; a
	// negative size disables cross-request translation-plan reuse.
	ServePlanSize = serve.WithPlanSize
	// ServeStreaming switches Query/QueryJoin to the tuple-at-a-time
	// per-shard pipeline with the given shard count; answers are identical
	// to the materialized path with per-request memory bounded by
	// shards × buffer in-flight tuples.
	ServeStreaming = serve.WithStreaming
	// ServeStreamBuffer sets the per-shard channel capacity on the
	// streaming path.
	ServeStreamBuffer = serve.WithStreamBuffer
	// ServeBuildBudget bounds the materialized build side of a streaming
	// join in tuples.
	ServeBuildBudget = serve.WithBuildBudget
	// ServeShardHook runs a hook at the start of every shard execution on
	// the streaming path (fault injection, admission checks).
	ServeShardHook = serve.WithShardHook
	// ServeChainDebug switches chain-backed sources to sequential
	// hop-by-hop translation (differential-checking mode).
	ServeChainDebug = serve.WithChainDebug
	// ServeIndex builds cost-based access paths (hash, sorted-array, and
	// inverted-token indexes plus per-attribute statistics) per source and
	// routes both execution paths through selectivity-ranked probes; answers
	// are byte-identical to the scan paths.
	ServeIndex = serve.WithIndex
	// ServeCacheAdmission guards the translation and matchings caches with
	// a TinyLFU admission sketch: full caches only admit entries estimated
	// more frequent than their eviction victim, so scans cannot wash out the
	// hot working set. Answers are unchanged.
	ServeCacheAdmission = serve.WithCacheAdmission
	// ServeBreaker enables per-source circuit breakers with default sizing;
	// a tripped source fails fast with the typed ErrBreakerOpen, never a
	// silently smaller answer.
	ServeBreaker = serve.WithBreaker
	// ServeBreakerConfig enables per-source circuit breakers sized by a
	// BreakerConfig.
	ServeBreakerConfig = serve.WithBreakerConfig
	// ServeRetries allows up to n total executions per source request,
	// re-running only typed transient faults with jittered backoff.
	ServeRetries = serve.WithRetries
	// ServeRetryConfig tunes the backoff between retry attempts.
	ServeRetryConfig = serve.WithRetryConfig
	// ServeHedge duplicates straggling source executions after the source's
	// latency-quantile delay and takes the first result (materialized
	// fan-out only).
	ServeHedge = serve.WithHedge
	// ServeHedgeConfig enables hedging tuned by a HedgeConfig.
	ServeHedgeConfig = serve.WithHedgeConfig
	// ServeResilienceSeed seeds the retry jitter stream for replayable
	// backoff schedules.
	ServeResilienceSeed = serve.WithResilienceSeed
	// ServeResilience replaces the whole resilience group at once.
	ServeResilience = serve.WithResilience
)

// Typed error sentinels of the serving layer, for errors.Is checks.
var (
	// ErrBuildBudget reports a streaming join whose materialized build side
	// exceeded its tuple budget.
	ErrBuildBudget = serve.ErrBuildBudget
	// ErrInjected is the typed root of every transient fault an injector
	// produces (fault-injection testing).
	ErrInjected = engine.ErrInjected
	// ErrBreakerOpen is the typed fast-fail of a tripped per-source circuit
	// breaker — the degraded-answer contract: a request that touched a
	// tripped source fails with this error, never with a silently smaller
	// answer.
	ErrBreakerOpen = serve.ErrBreakerOpen
)

// Serve wraps a mediator and its per-source data in the concurrent serving
// layer, configured by the options:
//
//	s := querymap.Serve(m, data,
//		querymap.ServeCacheSize(1024),
//		querymap.ServeWorkers(8))
func Serve(m *Mediator, data map[string]*Relation, opts ...ServeOption) *ServeServer {
	return serve.NewServer(m, data, opts...)
}

// NewCachingTranslator wraps m's Translate in a canonical LRU cache holding
// up to capacity translations. Queries that are equivalent under ∧/∨
// commutativity, associativity, and idempotence share one entry, so
// permuted duplicates translate once; concurrent identical misses are
// collapsed into a single computation.
func NewCachingTranslator(m *Mediator, capacity int) *CachingTranslator {
	return serve.NewCachingTranslator(m, capacity)
}

// NewServer wraps a mediator and its per-source data in the concurrent
// serving layer: cached translation, parallel per-source execution under a
// bounded worker pool, deterministic merging, and stats. Serve is the
// equivalent options form.
func NewServer(m *Mediator, data map[string]*Relation, cfg ServeConfig) *ServeServer {
	return serve.New(m, data, cfg)
}

// CanonicalKey returns the stable cache-key string of the query's canonical
// form: ∧/∨ child order, duplicate siblings, and join-constraint
// orientation are all abstracted away, so equivalent queries share a key.
func CanonicalKey(q *Query) string { return q.CanonicalKey() }

// Canonicalize returns the canonical representative of the query's
// equivalence class: normalized, deduplicated, children sorted.
func Canonicalize(q *Query) *Query { return q.Canonical() }

// Data translation (package internal/datamap): translating a record is the
// equality special case of constraint mapping.
type (
	// DataResult is the outcome of translating one record.
	DataResult = datamap.Result
)

// TranslateTuple translates an attribute-value record into the target
// vocabulary of the translator's specification.
var TranslateTuple = datamap.TranslateTuple

// Prebuilt sources reproducing the paper's scenarios.
var (
	// Amazon is the Figure 3 bookstore with structured author search.
	Amazon = sources.NewAmazon
	// Clbooks is Example 1's bookstore restricted to word containment.
	Clbooks = sources.NewClbooks
	// LibraryT1 is Example 3's source with paper and aubib.
	LibraryT1 = sources.NewT1
	// LibraryT2 is Example 3's source with coded-department prof.
	LibraryT2 = sources.NewT2
	// MapSource is Example 8's map server with interdependent rectangle
	// attributes.
	MapSource = sources.NewMapSource
	// Cars is Section 1's car dealer with the many-to-many
	// car-type/year ↦ make/model mapping.
	Cars = sources.NewCars
	// Metric is the unit-conversion catalog (inches → centimeters,
	// dollars → cents) across all comparison operators.
	Metric = sources.NewMetric
)

// Bound-value constructors for writing rule action functions.
var (
	// ValueOf wraps a constant value for a rule binding.
	ValueOf = rules.ValueOf
	// AttrOf wraps an attribute for a rule binding.
	AttrOf = rules.AttrOf
)

// ValueOfString wraps a string constant for a rule binding.
func ValueOfString(s string) BoundVal { return rules.ValueOf(values.String(s)) }

// ValueOfInt wraps an integer constant for a rule binding.
func ValueOfInt(i int64) BoundVal { return rules.ValueOf(values.Int(i)) }

// StringValue extracts the raw text of a string value.
func StringValue(v Value) (string, bool) {
	s, ok := v.(values.String)
	if !ok {
		return "", false
	}
	return s.Raw(), true
}

// IntValue extracts an integer value.
func IntValue(v Value) (int64, bool) {
	i, ok := v.(values.Int)
	if !ok {
		return 0, false
	}
	return int64(i), true
}

// FloatValue extracts a numeric value (integer or float).
func FloatValue(v Value) (float64, bool) { return values.Numeric(v) }

// Common value constructors for building queries programmatically.
var (
	// Str builds a string value.
	Str = func(s string) Value { return values.String(s) }
	// Int builds an integer value.
	Int = func(i int64) Value { return values.Int(i) }
	// Date builds a (possibly partial) date value.
	Date = func(year, month, day int) Value { return values.Date{Year: year, Month: month, Day: day} }
	// Pattern parses a text pattern such as "data(near)mining".
	Pattern = values.ParsePattern
)
