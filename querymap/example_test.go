package querymap_test

import (
	"fmt"

	"repro/querymap"
)

// ExampleTranslator demonstrates the paper's Example 1: translating a
// name query into Amazon's combined-author vocabulary.
func ExampleTranslator() {
	src := querymap.Amazon()
	tr := querymap.NewTranslator(src.Spec)

	q := querymap.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`)
	s, err := tr.Translate(q, querymap.AlgTDQM)
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output: [author = "Clancy, Tom"]
}

// ExampleTranslator_dependencies demonstrates Example 2: constraint
// dependencies across a disjunction are respected, producing the minimal
// mapping rather than the naive per-conjunct translation.
func ExampleTranslator_dependencies() {
	tr := querymap.NewTranslator(querymap.Amazon().Spec)

	q := querymap.MustParse(`([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]`)
	s, err := tr.Translate(q, querymap.AlgTDQM)
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output: [author = "Clancy, Tom"] or [author = "Klancy, Tom"]
}

// ExampleTranslator_filter demonstrates semantic relaxation with a filter
// query: the target lacks the proximity operator, so (near) relaxes to (^)
// and the original constraint is kept as the filter (Eq. 3).
func ExampleTranslator_filter() {
	tr := querymap.NewTranslator(querymap.Amazon().Spec)

	q := querymap.MustParse(`[ti contains java(near)jdk]`)
	mapped, filter, err := tr.TranslateWithFilter(q, querymap.AlgTDQM)
	if err != nil {
		panic(err)
	}
	fmt.Println("S(Q) =", mapped)
	fmt.Println("F    =", filter)
	// Output:
	// S(Q) = [ti-word contains java(^)jdk]
	// F    = [ti contains java(near)jdk]
}

// ExampleNewSpec demonstrates building a mapping specification from rule
// DSL text with a custom conversion function.
func ExampleNewSpec() {
	reg := querymap.NewRegistry()
	reg.RegisterAction("Upper", func(b querymap.Binding, args []string) (querymap.BoundVal, error) {
		v, err := b.Value(args[0])
		if err != nil {
			return querymap.BoundVal{}, err
		}
		s := v.(interface{ Raw() string }).Raw()
		up := ""
		for _, r := range s {
			if r >= 'a' && r <= 'z' {
				r -= 32
			}
			up += string(r)
		}
		return querymap.ValueOfString(up), nil
	})

	rs := querymap.MustParseRules(`
rule U {
  match [code = C];
  where Value(C);
  let UC = Upper(C);
  emit exact [shout-code = UC];
}
`)
	target := querymap.NewTarget("shouty", querymap.Capability{Attr: "shout-code", Op: "="})
	spec, err := querymap.NewSpec("K_shouty", target, reg, rs...)
	if err != nil {
		panic(err)
	}

	tr := querymap.NewTranslator(spec)
	s, err := tr.Translate(querymap.MustParse(`[code = "ab12"]`), querymap.AlgSCM)
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output: [shout-code = "AB12"]
}

// ExampleMediator demonstrates multi-source translation with the global
// filter of Example 3.
func ExampleMediator() {
	med := querymap.NewMediator(querymap.LibraryT1(), querymap.LibraryT2())
	q := querymap.MustParse(`[fac.ln = pub.ln] and [fac.fn = pub.fn] and ` +
		`[fac.bib contains data(near)mining] and [fac.dept = cs]`)
	tr, err := med.Translate(q)
	if err != nil {
		panic(err)
	}
	for _, st := range tr.Sources {
		fmt.Printf("S_%s(Q) = %s\n", st.Source.Name, st.Query)
	}
	fmt.Println("F =", tr.Filter)
	// Output:
	// S_t1(Q) = [fac.aubib.bib contains data(^)mining] and [fac.aubib.name = pub.paper.au]
	// S_t2(Q) = [fac.prof.dept = 230]
	// F = [fac.bib contains data(near)mining]
}
