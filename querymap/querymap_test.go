package querymap_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/querymap"
)

func TestValueConstructors(t *testing.T) {
	if got := querymap.Str("x").String(); got != `"x"` {
		t.Errorf("Str = %s", got)
	}
	if got := querymap.Int(42).String(); got != "42" {
		t.Errorf("Int = %s", got)
	}
	if got := querymap.Date(1997, 5, 0).String(); got != "May/97" {
		t.Errorf("Date = %s", got)
	}
	p, err := querymap.Pattern("data(near)mining")
	if err != nil || p.Kind() != "pattern" {
		t.Errorf("Pattern = %v, %v", p, err)
	}
}

func TestValueExtractors(t *testing.T) {
	if s, ok := querymap.StringValue(querymap.Str("x")); !ok || s != "x" {
		t.Errorf("StringValue = %q, %v", s, ok)
	}
	if _, ok := querymap.StringValue(querymap.Int(1)); ok {
		t.Error("StringValue accepted an int")
	}
	if i, ok := querymap.IntValue(querymap.Int(7)); !ok || i != 7 {
		t.Errorf("IntValue = %d, %v", i, ok)
	}
	if f, ok := querymap.FloatValue(querymap.Int(7)); !ok || f != 7 {
		t.Errorf("FloatValue = %g, %v", f, ok)
	}
}

func TestQueryConstructors(t *testing.T) {
	a, err := querymap.ParseConstraint(`[x = 1]`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := querymap.ParseConstraint(`y = 2`)
	if err != nil {
		t.Fatal(err)
	}
	q := querymap.NewAnd(querymap.NewLeaf(a),
		querymap.NewOr(querymap.NewLeaf(b), querymap.TrueQuery()))
	// b ∨ TRUE = TRUE, TRUE ∧ a = a.
	if q.Size() != 1 {
		t.Errorf("constructed query = %s (size %d), want single leaf", q, q.Size())
	}
}

func TestSimplifyExported(t *testing.T) {
	q := querymap.MustParse(`[a = 1] or ([a = 1] and [b = 2])`)
	if got := querymap.Simplify(q); got.Size() != 1 {
		t.Errorf("Simplify = %s", got)
	}
	y := querymap.MustParse(`[a = 1] and [b = 2]`)
	x := querymap.MustParse(`[a = 1]`)
	if !querymap.Implies(y, x) || querymap.Implies(x, y) {
		t.Error("Implies re-export misbehaves")
	}
}

func TestPrebuiltSources(t *testing.T) {
	for _, src := range []*querymap.Source{
		querymap.Amazon(), querymap.Clbooks(), querymap.LibraryT1(),
		querymap.LibraryT2(), querymap.MapSource(), querymap.Cars(), querymap.Metric(),
	} {
		if src.Name == "" || src.Spec == nil || len(src.Spec.Rules) == 0 {
			t.Errorf("prebuilt source %+v incomplete", src)
		}
		if ps := querymap.LintSpec(src.Spec); len(ps) != 0 {
			t.Errorf("%s lint findings: %v", src.Name, ps)
		}
	}
}

func TestFormatSpecExported(t *testing.T) {
	text := querymap.FormatSpec(querymap.Amazon().Spec)
	if !strings.Contains(text, "rule R6") {
		t.Errorf("FormatSpec output missing rules:\n%.200s", text)
	}
	// The formatted text must reparse.
	if _, err := querymap.ParseRules(text); err != nil {
		t.Errorf("formatted spec does not reparse: %v", err)
	}
}

// TestConcurrentTranslators: a Spec is read-only after construction, so
// independent Translators over one shared Spec may run concurrently.
// Run with -race to validate.
func TestConcurrentTranslators(t *testing.T) {
	spec := querymap.Amazon().Spec
	queries := []string{
		`[ln = "Clancy"] and [fn = "Tom"]`,
		`([ln = "A"] or [ln = "B"]) and [fn = "C"]`,
		`[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])`,
		`[kwd contains www] or [category = "D.3"]`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := querymap.NewTranslator(spec)
			for i := 0; i < 50; i++ {
				q := querymap.MustParse(queries[(g+i)%len(queries)])
				if _, err := tr.Translate(q, querymap.AlgTDQM); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCanonicalKeyExported(t *testing.T) {
	a := querymap.MustParse(`[ln = "Clancy"] and ([fn = "Tom"] or [pyear = 1997])`)
	b := querymap.MustParse(`([pyear = 1997] or [fn = "Tom"]) and [ln = "Clancy"]`)
	if querymap.CanonicalKey(a) != querymap.CanonicalKey(b) {
		t.Error("permuted-but-equivalent queries should share a canonical key")
	}
	c := querymap.MustParse(`[ln = "Clancy"] or ([fn = "Tom"] and [pyear = 1997])`)
	if querymap.CanonicalKey(a) == querymap.CanonicalKey(c) {
		t.Error("inequivalent queries should have distinct canonical keys")
	}
	if querymap.Canonicalize(a).String() != querymap.Canonicalize(b).String() {
		t.Error("canonical trees of equivalent queries should render identically")
	}
}

func TestNewCachingTranslatorExported(t *testing.T) {
	med := querymap.NewMediator(querymap.Amazon(), querymap.Clbooks())
	ct := querymap.NewCachingTranslator(med, 16)
	q1 := querymap.MustParse(`[ln = "Clancy"] and [fn = "Tom"]`)
	q2 := querymap.MustParse(`[fn = "Tom"] and [ln = "Clancy"]`)
	tr1, err := ct.Translate(q1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ct.Translate(q2)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("permuted query should hit the canonical cache entry")
	}
	if ct.Hits() != 1 || ct.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", ct.Hits(), ct.Misses())
	}
}

func TestResilienceSurfaceExported(t *testing.T) {
	med := querymap.NewMediator(querymap.Amazon(), querymap.Clbooks())
	data := map[string]*querymap.Relation{
		"amazon":  querymap.NewRelation("amazon"),
		"clbooks": querymap.NewRelation("clbooks"),
	}
	srv := querymap.Serve(med, data,
		querymap.ServeCacheSize(8),
		querymap.ServeCacheAdmission(true),
		querymap.ServeBreaker(true),
		querymap.ServeRetries(2),
		querymap.ServeHedge(true),
		querymap.ServeResilienceSeed(7),
	)
	out, err := srv.Query(context.Background(), querymap.MustParse(`[ln = "Clancy"]`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty sources answered %d tuples", out.Len())
	}
	st := srv.Stats()
	if st.BreakerTrips != 0 || st.Retries != 0 {
		t.Errorf("clean run recorded trips=%d retries=%d, want 0/0", st.BreakerTrips, st.Retries)
	}
	for _, name := range []string{"amazon", "clbooks"} {
		if got := st.Sources[name].BreakerState; got != "closed" {
			t.Errorf("source %s breaker state = %q, want closed", name, got)
		}
	}

	// The grouped ServeConfig form builds the same server shape.
	srv2 := querymap.NewServer(med, data, querymap.ServeConfig{
		Cache: querymap.ServeCacheConfig{Size: 8, Admission: true},
		Resilience: querymap.ServeResilienceConfig{
			Breaker:       true,
			BreakerConfig: querymap.BreakerConfig{MinSamples: 4},
			Retries:       2,
			RetryConfig:   querymap.RetryConfig{BaseDelay: time.Millisecond},
			Hedge:         true,
			HedgeConfig:   querymap.HedgeConfig{MinDelay: time.Millisecond},
		},
	})
	if _, err := srv2.Query(context.Background(), querymap.MustParse(`[ln = "Clancy"]`)); err != nil {
		t.Fatal(err)
	}

	// The typed sentinels must be wired to their internal roots.
	for name, sentinel := range map[string]error{
		"ErrBuildBudget": querymap.ErrBuildBudget,
		"ErrInjected":    querymap.ErrInjected,
		"ErrBreakerOpen": querymap.ErrBreakerOpen,
	} {
		if sentinel == nil {
			t.Errorf("%s is nil", name)
		}
	}
}
